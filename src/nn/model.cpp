#include "nn/model.hpp"

#include <cstdint>
#include "nn/inference.hpp"
#include <fstream>
#include <istream>
#include <ostream>

namespace dl2f::nn {

namespace {
constexpr std::uint32_t kMagic = 0x444C3246;  // "DL2F"
}

Tensor3 Sequential::forward(const Tensor3& input) {
  Tensor3 t = input;
  for (auto& l : layers_) t = l->forward(t);
  return t;
}

Tensor3 Sequential::backward(const Tensor3& grad_output) {
  Tensor3 g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

const Tensor4& Sequential::infer_batch(InferenceContext& ctx) const {
  assert(ctx.model() == this);
  const std::int32_t n = ctx.acts_.front().batch();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    ctx.acts_[l + 1].set_batch(n);
    layers_[l]->infer_batch(ctx.acts_[l], ctx.acts_[l + 1], ctx.scratch_.data());
  }
  return ctx.acts_.back();
}

void Sequential::init_weights(Rng& rng) {
  for (auto& l : layers_) l->init_weights(rng);
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (auto* p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<const Param*> Sequential::params() const {
  std::vector<const Param*> out;
  for (const auto& l : layers_) {
    for (const auto* p : l->params()) out.push_back(p);
  }
  return out;
}

std::size_t Sequential::param_count() const {
  std::size_t n = 0;
  for (const auto* p : params()) n += p->size();
  return n;
}

void Sequential::zero_grad() {
  for (auto* p : params()) p->zero_grad();
}

Tensor3 Sequential::output_shape(const Tensor3& input_shape) const {
  Tensor3 s = input_shape;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

bool Sequential::save(std::ostream& os) const {
  const auto blocks = params();
  const std::uint32_t magic = kMagic;
  const auto count = static_cast<std::uint32_t>(blocks.size());
  os.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  os.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (auto* p : blocks) {
    const auto n = static_cast<std::uint64_t>(p->size());
    os.write(reinterpret_cast<const char*>(&n), sizeof n);
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(n * sizeof(float)));
  }
  return static_cast<bool>(os);
}

bool Sequential::load(std::istream& is) {
  std::uint32_t magic = 0, count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof magic);
  is.read(reinterpret_cast<char*>(&count), sizeof count);
  const auto blocks = params();
  if (!is || magic != kMagic || count != blocks.size()) return false;
  for (auto* p : blocks) {
    std::uint64_t n = 0;
    is.read(reinterpret_cast<char*>(&n), sizeof n);
    if (!is || n != p->size()) return false;
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
  return static_cast<bool>(is);
}

bool Sequential::save_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  return f && save(f);
}

bool Sequential::load_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return f && load(f);
}

}  // namespace dl2f::nn
