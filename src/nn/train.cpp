#include "nn/train.hpp"

#include <algorithm>

#include "common/debug_hooks.hpp"
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace dl2f::nn {

namespace {

/// A small persistent worker pool for the per-minibatch slice fan-out.
/// run() hands out task indices through an atomic cursor (the caller
/// participates too) and returns only once every pool worker is parked
/// again, so consecutive generations can never race on the cursor.
/// Scheduling affects nothing observable: slices write disjoint buffers.
class WorkerPool {
 public:
  explicit WorkerPool(std::int32_t extra_workers) {
    threads_.reserve(static_cast<std::size_t>(std::max(extra_workers, 0)));
    for (std::int32_t i = 0; i < extra_workers; ++i) {
      threads_.emplace_back([this, i] { worker_main(i + 1); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      const std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Execute fn(task, worker) for every task in [0, tasks). Worker 0 is
  /// the calling thread; pool workers are 1..N. Blocks until all tasks
  /// completed AND all pool workers are parked.
  void run(std::int32_t tasks, const std::function<void(std::int32_t, std::int32_t)>& fn) {
    if (tasks <= 0) return;
    if (threads_.empty() || tasks == 1) {
      for (std::int32_t t = 0; t < tasks; ++t) fn(t, 0);
      return;
    }
    {
      const std::scoped_lock lock(mutex_);
      fn_ = &fn;
      tasks_ = tasks;
      cursor_.store(0, std::memory_order_relaxed);
      active_ = static_cast<std::int32_t>(threads_.size());
      ++generation_;
    }
    start_cv_.notify_all();
    for (;;) {
      const std::int32_t t = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks) break;
      fn(t, 0);
    }
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
  }

 private:
  void worker_main(std::int32_t id) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::int32_t, std::int32_t)>* fn = nullptr;
      std::int32_t tasks = 0;
      {
        std::unique_lock lock(mutex_);
        start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = fn_;
        tasks = tasks_;
      }
      for (;;) {
        const std::int32_t t = cursor_.fetch_add(1, std::memory_order_relaxed);
        if (t >= tasks) break;
        (*fn)(t, id);
      }
      {
        const std::scoped_lock lock(mutex_);
        --active_;
      }
      done_cv_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::int32_t, std::int32_t)>* fn_ = nullptr;
  std::int32_t tasks_ = 0;
  std::int32_t active_ = 0;
  std::atomic<std::int32_t> cursor_{0};
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

void batch_train(Sequential& model, Optimizer& optimizer, const Tensor3& input_shape,
                 std::size_t item_count, const StageFn& stage, const LossFn& loss,
                 const BatchTrainConfig& cfg, Rng& rng, const EpochFn& on_epoch) {
  if (item_count == 0 || cfg.epochs <= 0) return;
  const std::int32_t threads = std::clamp(cfg.threads, 1, 16);
  const std::int32_t bs = std::max(cfg.batch_size, 1);
  const std::int32_t max_slices = (bs + kGradSliceSamples - 1) / kGradSliceSamples;

  // Per-worker arenas (bound lazily ON the worker thread so each worker's
  // buffers come from its own malloc arena) and per-slice gradient
  // buffers — the fixed-order reduction unit.
  std::vector<InferenceContext> contexts(static_cast<std::size_t>(threads));
  std::vector<GradientBuffer> slice_grads(static_cast<std::size_t>(max_slices));
  for (auto& g : slice_grads) g.bind(model);
  std::vector<float> slice_loss(static_cast<std::size_t>(max_slices), 0.0F);
  std::vector<double> slice_metric(static_cast<std::size_t>(max_slices), 0.0);
  GradientBuffer total;
  total.bind(model);

  std::vector<std::size_t> order(item_count);
  std::iota(order.begin(), order.end(), 0);

  WorkerPool pool(threads - 1);

  for (std::int32_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    float epoch_loss = 0.0F;
    double epoch_metric = 0.0;

    for (std::size_t base = 0; base < order.size(); base += static_cast<std::size_t>(bs)) {
      const auto mini =
          static_cast<std::int32_t>(std::min<std::size_t>(static_cast<std::size_t>(bs),
                                                          order.size() - base));
      const std::int32_t slices = (mini + kGradSliceSamples - 1) / kGradSliceSamples;

      const std::function<void(std::int32_t, std::int32_t)> run_slice =
          [&](std::int32_t t, std::int32_t worker) {
            InferenceContext& ctx = contexts[static_cast<std::size_t>(worker)];
            ctx.bind_train(model, input_shape, kGradSliceSamples);
            // Past the (idempotent) binding, the whole slice — staging,
            // batched forward, loss kernels, batched backward — runs in
            // this worker's arena and the preallocated slice gradient
            // buffers: zero allocations, checked in Debug builds.
            const dbg::NoAllocScope no_alloc("batch_train slice compute");
            const std::int32_t lo = t * kGradSliceSamples;
            const std::int32_t n = std::min(kGradSliceSamples, mini - lo);
            Tensor4& in = ctx.input(n);
            for (std::int32_t j = 0; j < n; ++j) {
              stage(order[base + static_cast<std::size_t>(lo + j)], in, j);
            }
            const Tensor4& out = model.forward_batch(ctx);
            Tensor4& lg = ctx.loss_grad();
            float lsum = 0.0F;
            double msum = 0.0;
            for (std::int32_t j = 0; j < n; ++j) {
              const ItemLoss r = loss(order[base + static_cast<std::size_t>(lo + j)],
                                      out.sample(j), out.sample_size(), lg.sample(j));
              lsum += r.loss;
              msum += r.metric;
            }
            auto& grads = slice_grads[static_cast<std::size_t>(t)];
            grads.zero();
            model.backward_batch(ctx, grads);
            slice_loss[static_cast<std::size_t>(t)] = lsum;
            slice_metric[static_cast<std::size_t>(t)] = msum;
          };
      pool.run(slices, run_slice);

      // Fixed-order reduction: slice gradients summed ascending, then one
      // optimizer step — identical bytes at any thread count.
      total.zero();
      for (std::int32_t t = 0; t < slices; ++t) {
        total.add(slice_grads[static_cast<std::size_t>(t)]);
        epoch_loss += slice_loss[static_cast<std::size_t>(t)];
        epoch_metric += slice_metric[static_cast<std::size_t>(t)];
      }
      total.store(model);
      optimizer.step();
    }

    if (on_epoch) {
      const auto n = static_cast<float>(std::max<std::size_t>(order.size(), 1));
      on_epoch(epoch, epoch_loss / n, epoch_metric / static_cast<double>(order.size()));
    }
  }
}

}  // namespace dl2f::nn
