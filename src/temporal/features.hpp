// Cross-source correlation features for the temporal detection head.
//
// The single-window detector sees only the four directional VCO frames of
// one monitoring window, so an attacker that keeps every individual window
// under the decision boundary (pulse duty-cycling, slow stealth ramps,
// colluding low-rate sources, benign-shaped mimicry) is invisible to it.
// The temporal head widens the view along two axes:
//
//   * time   — a sequence of consecutive windows, so sub-threshold but
//              *persistent* pressure and slow drifts become signal;
//   * source — per-NI injection-demand telemetry, so many-sources-one-victim
//              collusion shows up as a rate anomaly at the sources even
//              though no single link saturates.
//
// This header holds the per-window feature-plane builders shared by the
// TemporalDetector's preprocessing and its tests, plus the source-suspect
// heuristic the pipeline uses to assist localization for colluding attacks.
//
// Determinism note: every function here is a pure function of its inputs
// with a fixed iteration order — the bitwise-reproducibility contract of
// the trained weights and campaign results extends through this file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "monitor/window_history.hpp"

namespace dl2f::temporal {

/// Fallback window length when a FrameSample predates NI telemetry
/// (window_cycles == 0); matches DefenseConfig::window_cycles.
inline constexpr std::int64_t kDefaultWindowCycles = 1000;

/// Gain applied to per-cell BOC pressure rates before squashing. BOC
/// counters sum blocked-cycle counts over four frames, so the raw rate is
/// already O(1); unity gain keeps mid-range rates in the squash's linear
/// region.
inline constexpr float kPressureGain = 1.0F;

/// Gain applied to per-node injection rates (flits/cycle) before squashing.
/// Benign NI demand sits well under 1 flit/cycle, so the gain stretches the
/// benign/colluder gap across the squash's responsive range.
inline constexpr float kSourceGain = 4.0F;

/// Bounded monotone normalizer x / (1 + x) for non-negative rates: keeps
/// every feature in [0, 1) without a data-dependent max (which would break
/// the per-window purity the sequence-identity tests rely on).
[[nodiscard]] constexpr float squash(float x) noexcept { return x / (1.0F + x); }

/// Signed variant mapping R -> (-1, 1), used for cross-window deltas.
[[nodiscard]] constexpr float squash_signed(float x) noexcept {
  return x >= 0.0F ? x / (1.0F + x) : x / (1.0F - x);
}

/// Window length to normalize a sample's counters by (its own recorded
/// length, or kDefaultWindowCycles when unknown).
[[nodiscard]] constexpr std::int64_t window_cycles_of(const monitor::FrameSample& s) noexcept {
  return s.window_cycles > 0 ? s.window_cycles : kDefaultWindowCycles;
}

/// Raw (pre-squash, pre-gain) aggregate BOC pressure rate per frame cell:
/// the four directional blocked-cycle counters summed cellwise, divided by
/// the window length. `dst` receives rows x (cols-1) floats; `n` must equal
/// that plane size.
void pressure_rate_into(const monitor::FrameSample& s, float* dst, std::size_t n);

/// RAW (gained, pre-squash) per-source injection-rate plane: node (x, y)
/// maps to plane cell (row y, col min(x, cols-2)) so the rightmost two mesh
/// columns fold into the last frame column by max — frames are
/// rows x (cols-1), one column narrower than the mesh. Missing telemetry
/// (empty ni_load) yields zeros. The raw plane feeds the rate-trend
/// (windowed slope) channel: a stealth ramp's slope is linear here but
/// compressed to invisibility after the squash.
void sources_rate_into(const monitor::FrameSample& s, const MeshShape& mesh, float* dst,
                       std::size_t n);

/// Squashed per-source injection plane: squash() over sources_rate_into.
/// Because squash is strictly monotone, squashing after the max-fold is
/// bitwise identical to max-folding squashed rates.
void sources_plane_into(const monitor::FrameSample& s, const MeshShape& mesh, float* dst,
                        std::size_t n);

/// Knobs of the colluding-source localization assist.
struct SuspectConfig {
  /// A node is suspect when its sequence-mean injection rate exceeds the
  /// trimmed mean by this many trimmed standard deviations...
  double sigma_gate = 3.0;
  /// ...and by this absolute flits/cycle margin (guards the sigma gate
  /// against near-zero variance on uniform benign workloads).
  double min_margin = 0.25;
  /// Assist only fires with at least this many suspects — one or two hot
  /// sources are the static families' territory, where the segmentation
  /// localizer is already accurate and must not be second-guessed.
  std::int32_t min_sources = 3;
};

/// Nodes whose mean injection-demand rate across the sequence stands out
/// from the (top-eighth-trimmed) population — the colluding family's
/// many-sources signature. Returns ascending NodeIds; empty when fewer
/// than cfg.min_sources qualify or no window carries NI telemetry.
[[nodiscard]] std::vector<NodeId> source_suspects(monitor::SequenceView seq,
                                                  const MeshShape& mesh,
                                                  const SuspectConfig& cfg = {});

}  // namespace dl2f::temporal
