#include "temporal/features.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace dl2f::temporal {

void pressure_rate_into(const monitor::FrameSample& s, float* dst, std::size_t n) {
  const float inv_cycles = 1.0F / static_cast<float>(window_cycles_of(s));
  const auto& first = monitor::frame_of(s.boc, kMeshDirections.front());
  assert(n == first.data().size());
  (void)first;
  std::fill(dst, dst + n, 0.0F);
  for (Direction d : kMeshDirections) {
    const auto& data = monitor::frame_of(s.boc, d).data();
    assert(data.size() == n);
    for (std::size_t i = 0; i < n; ++i) dst[i] += data[i];
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] *= inv_cycles;
}

void sources_rate_into(const monitor::FrameSample& s, const MeshShape& mesh, float* dst,
                       std::size_t n) {
  const auto plane_cols = mesh.cols() - 1;
  assert(n == static_cast<std::size_t>(mesh.rows() * plane_cols));
  std::fill(dst, dst + n, 0.0F);
  if (s.ni_load.empty()) return;
  assert(s.ni_load.size() == static_cast<std::size_t>(mesh.node_count()));

  const float inv_cycles = 1.0F / static_cast<float>(window_cycles_of(s));
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    const Coord c = mesh.coord_of(id);
    const auto col = std::min(c.x, plane_cols - 1);
    float& cell = dst[static_cast<std::size_t>(c.y * plane_cols + col)];
    const float rate = kSourceGain * s.ni_load[static_cast<std::size_t>(id)] * inv_cycles;
    cell = std::max(cell, rate);
  }
}

void sources_plane_into(const monitor::FrameSample& s, const MeshShape& mesh, float* dst,
                        std::size_t n) {
  sources_rate_into(s, mesh, dst, n);
  // squash(max(a, b)) == max(squash(a), squash(b)) for a strictly monotone
  // squash, so this matches folding squashed rates bit for bit.
  for (std::size_t i = 0; i < n; ++i) dst[i] = squash(dst[i]);
}

std::vector<NodeId> source_suspects(monitor::SequenceView seq, const MeshShape& mesh,
                                    const SuspectConfig& cfg) {
  const auto n = static_cast<std::size_t>(mesh.node_count());
  std::vector<double> rate(n, 0.0);
  std::int32_t sampled = 0;
  for (const monitor::FrameSample* s : seq) {
    if (s == nullptr || s->ni_load.empty()) continue;
    assert(s->ni_load.size() == n);
    const double inv_cycles = 1.0 / static_cast<double>(window_cycles_of(*s));
    for (std::size_t i = 0; i < n; ++i) {
      rate[i] += static_cast<double>(s->ni_load[i]) * inv_cycles;
    }
    ++sampled;
  }
  if (sampled == 0) return {};
  for (double& r : rate) r /= sampled;

  // Trimmed population statistics: drop the hottest eighth (at least one
  // node) so the attackers themselves do not inflate the baseline they are
  // measured against, then gate on both sigma and an absolute margin.
  std::vector<double> sorted = rate;
  std::sort(sorted.begin(), sorted.end());
  const auto keep = n - std::max<std::size_t>(n / 8, 1);
  if (keep == 0) return {};
  double mean = 0.0;
  for (std::size_t i = 0; i < keep; ++i) mean += sorted[i];
  mean /= static_cast<double>(keep);
  double var = 0.0;
  for (std::size_t i = 0; i < keep; ++i) {
    const double d = sorted[i] - mean;
    var += d * d;
  }
  const double sigma = std::sqrt(var / static_cast<double>(keep));
  const double threshold = mean + std::max(cfg.sigma_gate * sigma, cfg.min_margin);

  std::vector<NodeId> suspects;
  for (std::size_t i = 0; i < n; ++i) {
    if (rate[i] > threshold) suspects.push_back(static_cast<NodeId>(i));
  }
  if (std::cmp_less(suspects.size(), cfg.min_sources)) return {};
  return suspects;
}

}  // namespace dl2f::temporal
