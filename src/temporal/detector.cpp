#include "temporal/detector.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "nn/layers.hpp"

namespace dl2f::temporal {

TemporalDetector::TemporalDetector(const TemporalDetectorConfig& cfg) : cfg_(cfg) {
  assert(cfg.sequence_length >= 1 && cfg.sequence_length <= kMaxSequenceLength);
  const auto rows = cfg.mesh.rows();
  const auto cols = cfg.mesh.cols() - 1;
  model_.emplace<nn::TimeDistributedConv2D>(cfg.sequence_length, kChannelsPerWindow, cfg.filters,
                                            cfg.kernel, nn::Padding::Valid);
  model_.emplace<nn::ReLU>();
  model_.emplace<nn::MaxPool2D>(cfg.pool);
  model_.emplace<nn::Flatten>();
  // Flatten's channel-major layout is time-major here: TimeDistributedConv2D
  // emits channel t*filters+f, so each window's embedding is one contiguous
  // D-float block — exactly the (steps, in_dim) layout TemporalConv1D wants.
  model_.emplace<nn::TemporalConv1D>(cfg.sequence_length, embedding_dim(), cfg.temporal_filters,
                                     cfg.temporal_kernel);
  model_.emplace<nn::ReLU>();
  const auto out_steps = cfg.sequence_length - cfg.temporal_kernel + 1;
  model_.emplace<nn::Dense>(out_steps * cfg.temporal_filters, 1);
  model_.emplace<nn::Sigmoid>();
  (void)rows;
  (void)cols;
}

nn::Tensor3 TemporalDetector::input_shape() const {
  return nn::Tensor3(cfg_.sequence_length * kChannelsPerWindow, cfg_.mesh.rows(),
                     cfg_.mesh.cols() - 1);
}

std::int32_t TemporalDetector::embedding_dim() const noexcept {
  const auto conv_h = cfg_.mesh.rows() - cfg_.kernel + 1;
  const auto conv_w = (cfg_.mesh.cols() - 1) - cfg_.kernel + 1;
  return cfg_.filters * (conv_h / cfg_.pool) * (conv_w / cfg_.pool);
}

void TemporalDetector::preprocess_into(monitor::SequenceView seq, nn::Tensor4& batch,
                                       std::int32_t slot) const {
  const auto rows = cfg_.mesh.rows();
  const auto cols = cfg_.mesh.cols() - 1;
  const auto hw = static_cast<std::size_t>(rows * cols);
  const auto per_window = static_cast<std::size_t>(kChannelsPerWindow) * hw;
  assert(std::cmp_equal(seq.size(), cfg_.sequence_length));
  assert(batch.sample_size() == seq.size() * per_window);
  float* dst = batch.sample(slot);

  // Pass 1, per window: VCO channels 0-3 verbatim, RAW gained pressure rate
  // into the channel-4 slot, RAW gained source-rate plane into the
  // channel-6 slot.
  for (std::size_t t = 0; t < seq.size(); ++t) {
    const monitor::FrameSample& s = *seq[t];
    float* win = dst + t * per_window;
    std::size_t off = 0;
    for (Direction d : kMeshDirections) {
      const auto& data = monitor::frame_of(s.vco, d).data();
      assert(data.size() == hw);
      std::copy(data.begin(), data.end(), win + off);
      off += hw;
    }
    pressure_rate_into(s, win + 4 * hw, hw);
    for (std::size_t i = 0; i < hw; ++i) (win + 4 * hw)[i] *= kPressureGain;
    sources_rate_into(s, cfg_.mesh, win + 6 * hw, hw);
  }

  // Pass 2, timesteps DESCENDING: channel 5 is the signed delta between
  // this window's and the previous window's raw pressure rates, and
  // channel 7 the same trend over the raw source rates; then the raw
  // channel-4 and channel-6 slots are squashed in place. Descending order
  // means window t-1's slots still hold the raw rates when window t's
  // deltas read them — no scratch planes needed.
  for (std::size_t t = seq.size(); t-- > 0;) {
    float* win = dst + t * per_window;
    float* rate = win + 4 * hw;
    float* delta = win + 5 * hw;
    float* src_rate = win + 6 * hw;
    float* src_trend = win + 7 * hw;
    const float* prev = t > 0 ? dst + (t - 1) * per_window + 4 * hw : rate;
    const float* src_prev = t > 0 ? dst + (t - 1) * per_window + 6 * hw : src_rate;
    for (std::size_t i = 0; i < hw; ++i) delta[i] = squash_signed(rate[i] - prev[i]);
    for (std::size_t i = 0; i < hw; ++i) src_trend[i] = squash_signed(src_rate[i] - src_prev[i]);
    for (std::size_t i = 0; i < hw; ++i) rate[i] = squash(rate[i]);
    for (std::size_t i = 0; i < hw; ++i) src_rate[i] = squash(src_rate[i]);
  }
}

nn::Tensor3 TemporalDetector::preprocess(monitor::SequenceView seq) const {
  nn::Tensor3 shape = input_shape();
  nn::Tensor4 staged(1, shape.channels(), shape.height(), shape.width());
  preprocess_into(seq, staged, 0);
  nn::Tensor3 out(shape.channels(), shape.height(), shape.width());
  out.data().assign(staged.data().begin(), staged.data().end());
  return out;
}

float TemporalDetector::predict_probability(monitor::SequenceView seq) {
  return model_.forward(preprocess(seq)).data()[0];
}

bool TemporalDetector::predict(monitor::SequenceView seq) {
  return predict_probability(seq) > cfg_.threshold;
}

}  // namespace dl2f::temporal
