// Adversarial retraining grid for the temporal detector.
//
// The base training set (monitor/dataset.hpp) contains only static
// flooding — the paper's threat model. A detector trained on it has never
// seen a pulse trough, a stealth ramp's early windows, or six colluding
// sources each below threshold, which is exactly why the robustness matrix
// shows blind spots. This module generates window-SEQUENCE training data
// by running the registered scenario families (static AND evasive) over
// benign workloads with the same per-cycle stepping the DefenseRuntime
// uses online, labeling each sequence by the ground-truth attacker
// activity in its newest window.
//
// Seeding follows the campaign convention: each (family, workload, rep)
// cell's randomness is a pure function of its grid coordinates, so the
// dataset — and therefore the trained weights — is byte-identical across
// runs and thread counts.
#pragma once

#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "monitor/benchmark.hpp"
#include "noc/router.hpp"
#include "runtime/scenario.hpp"
#include "temporal/detector.hpp"

namespace dl2f::temporal {

/// One labeled training sequence: sequence_length consecutive windows
/// (oldest first, warmup-padded exactly as WindowHistory pads live runs).
struct SequenceSample {
  std::vector<monitor::FrameSample> windows;
  /// Attack traffic was active at some point during the NEWEST window.
  bool under_attack = false;
  std::string family;
  std::string workload;

  /// Pointer view over `windows` for TemporalDetector::preprocess_into.
  /// Valid until `windows` is mutated.
  [[nodiscard]] std::vector<const monitor::FrameSample*> view() const;
};

struct SequenceDataset {
  MeshShape mesh = MeshShape::square(8);
  std::int32_t sequence_length = 4;
  std::vector<SequenceSample> samples;

  [[nodiscard]] std::size_t attack_count() const noexcept;
  [[nodiscard]] std::size_t benign_count() const noexcept;
};

struct SequenceDatasetConfig {
  MeshShape mesh = MeshShape::square(8);
  noc::RouterConfig router;
  std::int32_t sequence_length = 4;
  /// Monitoring windows simulated (= sequences emitted) per run.
  std::int32_t windows_per_run = 12;
  /// Cycles per monitoring window. Must match the window length the
  /// consuming DefenseRuntime samples at (DefenseConfig::window_cycles) —
  /// NOT the workload's dataset sample_period, which differs for PARSEC
  /// traces and would train the head on windows twice as long as the ones
  /// it scores online.
  std::int64_t window_cycles = 1000;
  /// Independent runs (distinct seeds / attacker placements) per
  /// (family, workload) cell.
  std::int32_t runs_per_cell = 2;
  /// Attack knobs; mesh and benign workload are overwritten per cell.
  runtime::ScenarioParams params;
  /// Emulate mitigation: quarantine every attacker for the final third of
  /// each run. Those windows are truth-benign (no attack traffic reaches
  /// the network) but their sequences still hold attack windows in the
  /// history — exactly the post-mitigation regime a live DefenseRuntime
  /// scores, and the one a head trained only on attack-then-more-attack
  /// runs would false-positive on.
  bool mitigation_tail = true;
  std::uint64_t seed = 0x7e3aULL;
};

/// Run the (families x workloads x runs_per_cell) grid and collect one
/// labeled sequence per simulated window. Families must be registered in
/// the ScenarioRegistry (throws std::invalid_argument otherwise, matching
/// run_campaign). The benign prefix before ScenarioParams::attack_start
/// supplies the negative class.
[[nodiscard]] SequenceDataset generate_sequence_dataset(
    const SequenceDatasetConfig& cfg, const std::vector<std::string>& families,
    const std::vector<monitor::Benchmark>& workloads);

/// Train on a SequenceDataset through nn::batch_train — same fixed-order
/// gradient reduction as the single-window trainers, so weights are
/// byte-identical at any cfg.threads.
TemporalTrainReport train_temporal_detector(TemporalDetector& detector,
                                            const SequenceDataset& data,
                                            const TemporalTrainConfig& cfg);

/// Score every sequence in `data` (reference path).
[[nodiscard]] ConfusionMatrix evaluate_temporal_detector(TemporalDetector& detector,
                                                         const SequenceDataset& data);

}  // namespace dl2f::temporal
