// Temporal DoS detection head: classify a SEQUENCE of monitoring windows.
//
// Architecture (mirrors the single-window DoSDetector's conv->pool->dense
// shape, then adds a conv-over-time stage):
//
//   TimeDistributedConv2D(T, 8ch -> filters, k, Valid)   weights shared
//   ReLU                                                 across timesteps
//   MaxPool2D(pool)                                      (spatial only)
//   Flatten          -> T contiguous per-window embeddings, time-major
//   TemporalConv1D(T, D -> temporal_filters, kt)         conv over time
//   ReLU
//   Dense((T - kt + 1) * temporal_filters, 1)
//   Sigmoid
//
// Input is (T * 8, rows, cols-1): each window contributes 8 channels —
//   0..3  raw directional VCO frames (same planes the DoSDetector sees),
//   4     squashed aggregate BOC pressure rate,
//   5     signed squashed pressure-rate DELTA vs the previous window in the
//         sequence (zero at the first position — and across any warmup
//         padding, since padded windows repeat the oldest live window),
//   6     squashed per-source injection-demand plane (cross-source view),
//   7     signed squashed per-source rate-trend: the windowed slope of the
//         RAW (pre-squash) source-rate plane vs the previous window. A
//         stealth ramp is engineered to sit under every per-window
//         threshold, but its ramp slope is a *constant positive* value
//         here, window after window — exactly the persistence the
//         conv-over-time stage integrates. Zero at the first position and
//         across warmup padding, like channel 5.
//
// Channels 0, 1, 2, 3, 4 and 6 are pure functions of ONE window, so a
// window's feature planes are bitwise identical whether computed inside a
// sequence or in isolation (tests/window_history_test.cpp pins this); only
// channels 5 and 7 read a neighbor. All compute flows through the shared Layer /
// Tensor4 / GEMM stack, so the batched-vs-reference bitwise contract and
// the any-thread-count training determinism carry over unchanged.
#pragma once

#include <cstdint>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "monitor/window_history.hpp"
#include "nn/model.hpp"
#include "temporal/features.hpp"

namespace dl2f::temporal {

/// Feature channels each window contributes to the sequence tensor.
inline constexpr std::int32_t kChannelsPerWindow = 8;

/// Upper bound on TemporalDetectorConfig::sequence_length — lets callers
/// stage sequence views through fixed stack buffers.
inline constexpr std::int32_t kMaxSequenceLength = 16;

struct TemporalDetectorConfig {
  MeshShape mesh = MeshShape::square(8);
  /// Windows per classified sequence (T).
  std::int32_t sequence_length = 4;
  /// Spatial conv kernel / filter count / pool, as in DetectorConfig.
  std::int32_t kernel = 3;
  std::int32_t filters = 8;
  std::int32_t pool = 2;
  /// Conv-over-time kernel width (kt) and filter count.
  std::int32_t temporal_kernel = 2;
  std::int32_t temporal_filters = 16;
  /// Sequence-verdict gate. Slightly stricter than the single-window
  /// detector's 0.5: the pipeline ORs this verdict into a path that
  /// already catches overt floods, so the head only needs to fire on
  /// sequences it is confident about — a loose gate here taxes the static
  /// families' precision for no recall gain.
  float threshold = 0.6F;
  /// Colluding-source localization assist (see features.hpp).
  SuspectConfig suspects;
};

class TemporalDetector {
 public:
  explicit TemporalDetector(const TemporalDetectorConfig& cfg);

  [[nodiscard]] const TemporalDetectorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] nn::Sequential& model() noexcept { return model_; }
  [[nodiscard]] const nn::Sequential& model() const noexcept { return model_; }

  /// Shape of one preprocessed sequence: (T * 8, rows, cols - 1).
  [[nodiscard]] nn::Tensor3 input_shape() const;

  /// Flattened per-window embedding width D after conv/pool (the
  /// TemporalConv1D input dimension).
  [[nodiscard]] std::int32_t embedding_dim() const noexcept;

  /// Stage one sequence (exactly sequence_length windows, oldest first)
  /// into batch sample `slot`. Allocation-free.
  void preprocess_into(monitor::SequenceView seq, nn::Tensor4& batch, std::int32_t slot) const;

  /// Allocating single-sequence variant (reference path, tests).
  [[nodiscard]] nn::Tensor3 preprocess(monitor::SequenceView seq) const;

  /// Reference-path scoring of one sequence (training-side convenience;
  /// the pipeline scores through PipelineSession's batched context).
  [[nodiscard]] float predict_probability(monitor::SequenceView seq);
  [[nodiscard]] bool predict(monitor::SequenceView seq);

 private:
  TemporalDetectorConfig cfg_;
  nn::Sequential model_;
};

/// Training knobs, mirroring core::TrainConfig. Defined here (not reusing
/// core::TrainConfig) so src/temporal never includes src/core — the
/// pipeline layer includes this header, not the other way around.
struct TemporalTrainConfig {
  std::int32_t epochs = 30;
  std::int32_t batch_size = 8;
  float learning_rate = 1e-3F;
  /// BCE weight on benign sequences (attack sequences weigh 1.0). Keep
  /// near 1: the adversarial grid is already roughly class-balanced once
  /// the mitigation tail is mixed in, and overweighting benign measurably
  /// trades evasive-family recall for no static-precision gain.
  float benign_weight = 1.0F;
  std::uint64_t seed = 42;
  bool verbose = false;
  /// Worker threads for batched training; results are byte-identical at
  /// any value (nn::batch_train's fixed-order gradient reduction).
  std::int32_t threads = 1;
};

struct TemporalTrainReport {
  float final_loss = 0.0F;
  std::int32_t epochs_run = 0;
};

}  // namespace dl2f::temporal
