#include "temporal/adversarial.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "monitor/sampler.hpp"
#include "nn/loss.hpp"
#include "nn/train.hpp"
#include "traffic/simulation.hpp"

namespace dl2f::temporal {

std::vector<const monitor::FrameSample*> SequenceSample::view() const {
  std::vector<const monitor::FrameSample*> v;
  v.reserve(windows.size());
  for (const auto& w : windows) v.push_back(&w);
  return v;
}

std::size_t SequenceDataset::attack_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(samples.begin(), samples.end(), [](const auto& s) { return s.under_attack; }));
}

std::size_t SequenceDataset::benign_count() const noexcept {
  return samples.size() - attack_count();
}

namespace {

/// One simulation run of one (family, workload) cell: DefenseRuntime-style
/// per-cycle stepping, one labeled sequence per window.
void collect_run(const SequenceDatasetConfig& cfg, const std::string& family,
                 const monitor::Benchmark& workload, std::uint64_t cell_seed, std::int32_t rep,
                 SequenceDataset& out) {
  runtime::ScenarioParams params = cfg.params;
  params.mesh = cfg.mesh;
  params.benign = workload;
  auto scenario = runtime::ScenarioRegistry::instance().make(family, params, cell_seed);
  if (scenario == nullptr) {
    throw std::invalid_argument("generate_sequence_dataset: unknown scenario family '" + family +
                                "'");
  }

  noc::MeshConfig mesh_cfg;
  mesh_cfg.shape = cfg.mesh;
  mesh_cfg.router = cfg.router;
  traffic::Simulation sim(mesh_cfg);
  // Same install-seed derivation as run_job (campaign.cpp), so a training
  // cell and a campaign cell with equal coordinates replay identically.
  scenario->install(sim, cell_seed ^ 0x9e3779b97f4a7c15ULL);

  const monitor::FeatureSampler sampler(cfg.mesh);
  monitor::WindowHistory history(cfg.sequence_length);
  const auto period = cfg.window_cycles;
  sim.mesh().reset_telemetry();

  // Mitigation tail: emulate the fence so post-mitigation sequences (attack
  // history, benign truth) exist in the benign class. Two regimes, because a
  // live DefenseRuntime produces both:
  //  - even reps fence LATE (last third of the run): the attack ran long,
  //    then a drain tail — the slow-detection regime;
  //  - odd reps replay the live fence-probation CYCLE: fence one window
  //    after the attack starts (quarantine_votes=1 online), release after
  //    three fenced windows (probation_windows=3 online), the attack
  //    resumes, re-fence one window later, repeat. Without this rep every
  //    training sequence holds 4+ attack windows before its drain, and the
  //    head both false-positives on the live loop's
  //    [benign, attack, drain, benign] shape and never sees a
  //    resume-after-release window labeled attack.
  const auto attack_window = static_cast<std::int32_t>(cfg.params.attack_start / period);
  const bool fence_cycle = cfg.mitigation_tail && rep % 2 == 1;
  const std::int32_t tail_from =
      cfg.mitigation_tail && !fence_cycle
          ? std::max(1, cfg.windows_per_run - cfg.windows_per_run / 3)
          : cfg.windows_per_run;
  std::int32_t fence_at = std::min(attack_window + 1, cfg.windows_per_run - 1);
  std::int32_t release_at = -1;

  for (std::int32_t w = 0; w < cfg.windows_per_run; ++w) {
    if (fence_cycle) {
      if (w == fence_at) {
        for (const NodeId a : scenario->all_attackers()) sim.mesh().set_quarantined(a, true);
        release_at = w + 3;  // probation_windows' live default
        fence_at = -1;
      } else if (w == release_at) {
        for (const NodeId a : scenario->all_attackers()) sim.mesh().set_quarantined(a, false);
        fence_at = w + 1;
        release_at = -1;
      }
    } else if (w == tail_from) {
      for (const NodeId a : scenario->all_attackers()) sim.mesh().set_quarantined(a, true);
    }
    // Mirror DefenseRuntime::run_window: advance the scenario dynamics
    // before every simulator step, and track whether attack traffic
    // actually reached the network at any cycle of the window (the label
    // — quarantined attackers put nothing on the wire, matching the
    // runtime's ground-truth convention).
    bool active = false;
    for (std::int64_t c = 0; c < period; ++c) {
      const auto now = sim.mesh().now();
      scenario->on_cycle(now);
      if (!active) {
        for (const NodeId a : scenario->active_attackers(now)) {
          if (!sim.mesh().quarantined(a)) {
            active = true;
            break;
          }
        }
      }
      sim.step();
    }

    monitor::FrameSample sample;
    sample.vco = sampler.sample_vco(sim.mesh(), /*reset=*/true);
    sample.boc = sampler.sample_boc(sim.mesh(), /*reset=*/true);
    sample.ni_load = sampler.sample_ni_load(sim.mesh(), /*reset=*/true);
    sample.window_cycles = period;
    sample.under_attack = active;
    history.push(std::move(sample));

    SequenceSample seq;
    seq.family = family;
    seq.workload = workload.name();
    seq.under_attack = active;
    const auto view = history.view();
    seq.windows.reserve(view.size());
    for (const monitor::FrameSample* s : view) seq.windows.push_back(*s);
    out.samples.push_back(std::move(seq));
  }
}

}  // namespace

SequenceDataset generate_sequence_dataset(const SequenceDatasetConfig& cfg,
                                          const std::vector<std::string>& families,
                                          const std::vector<monitor::Benchmark>& workloads) {
  assert(cfg.sequence_length >= 1 && cfg.sequence_length <= kMaxSequenceLength);
  SequenceDataset out;
  out.mesh = cfg.mesh;
  out.sequence_length = cfg.sequence_length;
  for (const auto& family : families) {
    for (const auto& workload : workloads) {
      for (std::int32_t rep = 0; rep < cfg.runs_per_cell; ++rep) {
        // Campaign seed convention: a pure function of grid coordinates.
        const std::uint64_t cell_seed = (cfg.seed + static_cast<std::uint64_t>(rep)) ^
                                        fnv1a(family) ^ mix64(fnv1a(workload.name()));
        collect_run(cfg, family, workload, cell_seed, rep, out);
      }
    }
  }
  return out;
}

TemporalTrainReport train_temporal_detector(TemporalDetector& detector,
                                            const SequenceDataset& data,
                                            const TemporalTrainConfig& cfg) {
  assert(data.sequence_length == detector.config().sequence_length);
  Rng rng(cfg.seed);
  detector.model().init_weights(rng);
  nn::Adam optimizer(detector.model().params(), cfg.learning_rate);

  nn::BatchTrainConfig bt;
  bt.epochs = cfg.epochs;
  bt.batch_size = cfg.batch_size;
  bt.threads = cfg.threads;

  TemporalTrainReport report;
  const auto stage = [&](std::size_t item, nn::Tensor4& input, std::int32_t slot) {
    const auto& seq = data.samples[item];
    assert(seq.windows.size() <= static_cast<std::size_t>(kMaxSequenceLength));
    std::array<const monitor::FrameSample*, kMaxSequenceLength> ptrs{};
    for (std::size_t i = 0; i < seq.windows.size(); ++i) ptrs[i] = &seq.windows[i];
    detector.preprocess_into({ptrs.data(), seq.windows.size()}, input, slot);
  };
  const auto loss = [&](std::size_t item, const float* pred, std::size_t n,
                        float* grad) -> nn::ItemLoss {
    const bool attack = data.samples[item].under_attack;
    const float target = attack ? 1.0F : 0.0F;
    const float weight = attack ? 1.0F : cfg.benign_weight;
    return {nn::bce_loss_into(pred, &target, n, weight, grad), 0.0};
  };
  const auto on_epoch = [&](std::int32_t epoch, float mean_loss, double /*metric*/) {
    report.final_loss = mean_loss;
    ++report.epochs_run;
    if (cfg.verbose) std::cout << "temporal epoch " << epoch << " loss " << mean_loss << '\n';
  };
  nn::batch_train(detector.model(), optimizer, detector.input_shape(), data.samples.size(), stage,
                  loss, bt, rng, on_epoch);
  return report;
}

ConfusionMatrix evaluate_temporal_detector(TemporalDetector& detector,
                                           const SequenceDataset& data) {
  ConfusionMatrix cm;
  for (const auto& seq : data.samples) {
    const auto view = seq.view();
    cm.add(detector.predict({view.data(), view.size()}), seq.under_attack);
  }
  return cm;
}

}  // namespace dl2f::temporal
