#include "runtime/defense.hpp"

#include <algorithm>
#include <cassert>

namespace dl2f::runtime {

DefenseRuntime::DefenseRuntime(traffic::Simulation& sim, const core::PipelineEngine& engine,
                               DefenseConfig cfg)
    : sim_(sim), session_(engine, /*max_batch=*/1, cfg.precision), cfg_(cfg),
      sampler_(sim.mesh().shape()),
      windows_(engine.has_temporal() ? engine.config().temporal.sequence_length : 1) {
  assert(engine.config().detector.mesh == sim.mesh().shape());
  const auto n = static_cast<std::size_t>(sim.mesh().shape().node_count());
  votes_.assign(n, 0);
  clean_streak_.assign(n, 0);
  // Window 0 starts here: clear the feature counters and snapshot the
  // benign-latency accumulators so the first window's deltas are its own.
  sim_.mesh().reset_telemetry();
  auto& bs = sim_.mesh().benign_stats();
  bs.reset_window_max();
  prev_benign_sum_ = bs.packet_latency_sum();
  prev_benign_count_ = bs.packets_ejected();
  prev_hist_ = bs.packet_latency_histogram();
}

DefenseRuntime::DefenseRuntime(traffic::Simulation& sim, core::Dl2Fence& fence, DefenseConfig cfg)
    : DefenseRuntime(sim, fence.engine(), cfg) {}

WindowRecord DefenseRuntime::run_window() {
  auto& mesh = sim_.mesh();
  WindowRecord rec;
  rec.index = static_cast<std::int64_t>(history_.size());
  rec.start = mesh.now();

  // Union of attackers active at any cycle of the window: a midpoint (or
  // boundary) sample would alias with periodic attacks whose bursts dodge
  // the sample instant.
  std::vector<NodeId> active_union;
  for (std::int64_t c = 0; c < cfg_.window_cycles; ++c) {
    if (scenario_ != nullptr) {
      scenario_->on_cycle(mesh.now());
      for (const NodeId a : scenario_->active_attackers(mesh.now())) {
        if (std::find(active_union.begin(), active_union.end(), a) == active_union.end()) {
          active_union.push_back(a);
        }
      }
    }
    sim_.step();
  }
  rec.end = mesh.now();

  // Sample the window exactly as the training datasets do (VCO averaged
  // since the last reset, BOC accumulated since the last reset; each
  // feature restarts its own window after the read, so the order here is
  // immaterial).
  monitor::FrameSample sample;
  sample.vco = sampler_.sample_vco(mesh, /*reset=*/true);
  sample.boc = sampler_.sample_boc(mesh, /*reset=*/true);
  sample.ni_load = sampler_.sample_ni_load(mesh, /*reset=*/true);
  sample.window_cycles = cfg_.window_cycles;
  windows_.push(std::move(sample));
  // Temporal engines score the sliding sequence (single-window verdict
  // OR temporal verdict, plus the colluding-source assist); single-window
  // engines score the newest window exactly as before. While a post-fence
  // cooldown is active, the sequence verdict is suppressed (see
  // DefenseConfig::temporal_cooldown_windows) and only the single-window
  // path scores this window.
  const bool temporal_live = session_.engine().has_temporal() && temporal_cooldown_ == 0;
  if (temporal_cooldown_ > 0) --temporal_cooldown_;
  const core::RoundResult round = temporal_live ? session_.process_sequence(windows_.view())
                                                : session_.process(windows_.latest());
  rec.detected = round.detected;
  rec.probability = round.probability;
  rec.sequence_probability = round.sequence_probability;
  rec.tlm_attackers = round.tlm.attackers;

  // Windowed benign latency: deltas of the cumulative accumulators.
  auto& bs = mesh.benign_stats();
  const double sum = bs.packet_latency_sum();
  const std::int64_t count = bs.packets_ejected();
  rec.benign_packets = count - prev_benign_count_;
  rec.benign_latency =
      rec.benign_packets > 0 ? (sum - prev_benign_sum_) / static_cast<double>(rec.benign_packets)
                             : 0.0;
  const auto& hist = bs.packet_latency_histogram();
  std::vector<std::int64_t> window_hist(hist.size());
  for (std::size_t i = 0; i < hist.size(); ++i) window_hist[i] = hist[i] - prev_hist_[i];
  // A congested window can push its tail past the histogram range; when a
  // percentile lands in the overflow bucket, report THIS window's true
  // observed maximum (tracked exactly, reset every window boundary)
  // rather than the bucket clamp or a stale run-wide extreme.
  const auto overflow = static_cast<double>(bs.window_max_packet_latency());
  rec.benign_p50 = noc::histogram_percentile(window_hist, 0.50, overflow);
  rec.benign_p99 = noc::histogram_percentile(window_hist, 0.99, overflow);
  bs.reset_window_max();
  prev_benign_sum_ = sum;
  prev_benign_count_ = count;
  prev_hist_ = hist;

  // Ground truth before this window's mitigation actions: the fence state
  // seen here is the one that held throughout the window (fencing only
  // changes at window boundaries), so an attacker quarantined all along
  // put no traffic on the wire and does not count.
  if (scenario_ != nullptr) {
    std::sort(active_union.begin(), active_union.end());
    for (const NodeId a : active_union) {
      if (!mesh.quarantined(a)) rec.truth_attackers.push_back(a);
    }
    rec.truth_attack = !rec.truth_attackers.empty();
  }

  update_mitigation(round, rec);
  rec.quarantined = mesh.quarantined_nodes();
  if (!rec.newly_quarantined.empty()) temporal_cooldown_ = cfg_.temporal_cooldown_windows;

  history_.push_back(rec);
  return rec;
}

void DefenseRuntime::run_windows(std::int32_t count) {
  for (std::int32_t i = 0; i < count; ++i) run_window();
}

void DefenseRuntime::update_mitigation(const core::RoundResult& round, WindowRecord& rec) {
  auto& mesh = sim_.mesh();
  // Per-node evidence: what matters for both fencing and release is
  // whether *this node* was named by the TLM this window — a global dirty
  // verdict must not hold an unimplicated node hostage (an attack by
  // someone else would otherwise block a false positive's release), and
  // votes must not pool across unrelated windows.
  std::vector<char> named(votes_.size(), 0);
  if (round.detected) {
    for (const NodeId a : round.tlm.attackers) {
      if (mesh.shape().valid(a)) named[static_cast<std::size_t>(a)] = 1;
    }
  }

  for (std::size_t node = 0; node < votes_.size(); ++node) {
    const auto id = static_cast<NodeId>(node);
    if (mesh.quarantined(id)) {
      // Probation: released after probation_windows consecutive windows
      // in which the TLM does not implicate the node. Runs in every mode
      // so an operator-fenced node recovers even with mitigation off.
      if (named[node] != 0) {
        clean_streak_[node] = 0;
      } else if (++clean_streak_[node] >= cfg_.probation_windows) {
        mesh.set_quarantined(id, false);
        votes_[node] = 0;
        clean_streak_[node] = 0;
        rec.released.push_back(id);
      }
    } else if (named[node] != 0) {
      // Fencing: quarantine_votes consecutive implicating windows.
      ++votes_[node];
      if (cfg_.mitigation_enabled && votes_[node] >= cfg_.quarantine_votes) {
        mesh.set_quarantined(id, true);
        clean_streak_[node] = 0;
        rec.newly_quarantined.push_back(id);
      }
    } else {
      votes_[node] = 0;  // evidence does not pool across non-consecutive windows
    }
  }
}

void DefenseRuntime::quarantine_now(NodeId node) {
  assert(sim_.mesh().shape().valid(node));
  sim_.mesh().set_quarantined(node, true);
  clean_streak_[static_cast<std::size_t>(node)] = 0;
  votes_[static_cast<std::size_t>(node)] =
      std::max(votes_[static_cast<std::size_t>(node)], cfg_.quarantine_votes);
}

DefenseSummary DefenseRuntime::summarize(double recovery_ratio) const {
  DefenseSummary s;
  s.windows = static_cast<std::int64_t>(history_.size());
  s.recovery_ratio = recovery_ratio;
  if (history_.empty()) return s;

  ConfusionMatrix cm;
  core::LocalizationScore attacker_score;
  std::int64_t first_attack_index = -1;
  // Attackers that have actually flooded so far. Mitigation is judged
  // against this cumulative set each window — fencing often lands in a
  // window where a periodic attack is dormant (truth_attack false), and
  // once fenced an attacker drops out of later windows' truth sets, so
  // per-window truth alone could never certify mitigation.
  std::vector<NodeId> seen_attackers;

  for (const auto& w : history_) {
    if (scenario_ != nullptr) {
      cm.add(w.detected, w.truth_attack);
      if (w.truth_attack) attacker_score.add(w.tlm_attackers, w.truth_attackers);
    }
    if (w.truth_attack && first_attack_index < 0) {
      first_attack_index = w.index;
      s.first_attack_cycle = w.start;
    }
    if (w.truth_attack && w.detected && s.detect_cycle < 0) s.detect_cycle = w.end;
    s.peak_latency = std::max(s.peak_latency, w.benign_latency);
    for (const NodeId a : w.truth_attackers) {
      if (std::find(seen_attackers.begin(), seen_attackers.end(), a) == seen_attackers.end()) {
        seen_attackers.push_back(a);
      }
    }
    // Fence accounting: judged against the cumulative attacker set with
    // this window's truth already merged, so fencing a node in the very
    // window it starts flooding counts as a true fence.
    for (const NodeId q : w.newly_quarantined) {
      ++s.fence_events;
      if (scenario_ != nullptr &&
          std::find(seen_attackers.begin(), seen_attackers.end(), q) == seen_attackers.end()) {
        ++s.false_fence_events;
      }
    }
    if (s.mitigate_cycle < 0 && !seen_attackers.empty()) {
      const bool all_fenced = std::all_of(
          seen_attackers.begin(), seen_attackers.end(), [&](NodeId a) {
            return std::find(w.quarantined.begin(), w.quarantined.end(), a) !=
                   w.quarantined.end();
          });
      if (all_fenced) s.mitigate_cycle = w.end;
    }
  }
  s.detection = core::detection_metrics(cm);
  s.attacker_id = attacker_score.metrics();

  // Baseline: windows strictly before the first attack window (falling
  // back to the first window when the attack starts immediately).
  double base_sum = 0.0, base_p50 = 0.0, base_p99 = 0.0;
  std::int64_t base_n = 0;
  for (const auto& w : history_) {
    if (first_attack_index >= 0 && w.index >= first_attack_index) break;
    base_sum += w.benign_latency;
    base_p50 += w.benign_p50;
    base_p99 += w.benign_p99;
    ++base_n;
  }
  if (base_n == 0) {
    const auto& w0 = history_.front();
    base_sum = w0.benign_latency;
    base_p50 = w0.benign_p50;
    base_p99 = w0.benign_p99;
    base_n = 1;
  }
  s.baseline_latency = base_sum / static_cast<double>(base_n);
  s.baseline_p50 = base_p50 / static_cast<double>(base_n);
  s.baseline_p99 = base_p99 / static_cast<double>(base_n);

  if (s.mitigate_cycle >= 0) {
    for (const auto& w : history_) {
      if (w.start < s.mitigate_cycle || w.benign_packets <= 0) continue;
      if (w.benign_latency <= recovery_ratio * s.baseline_latency) {
        s.recover_cycle = w.end;
        s.recovered_latency = w.benign_latency;
        break;
      }
    }
  }
  return s;
}

}  // namespace dl2f::runtime
