#include "runtime/scenario.hpp"

#include <algorithm>
#include <cassert>

namespace dl2f::runtime {
namespace {

/// splitmix64 — decorrelates the sub-seeds derived from one scenario seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shared plumbing: the attack "legs" (one AttackScenario each) are fixed
/// at construction — ground truth is queryable before install() — and
/// install() materializes one FloodingAttack generator per leg.
class FdosScenarioBase : public Scenario {
 public:
  FdosScenarioBase(std::string family, const ScenarioParams& params)
      : Scenario(std::move(family)), params_(params) {}

  void install(traffic::Simulation& sim, std::uint64_t seed) override {
    assert(attacks_.empty() && "install() must be called exactly once");
    sim.add_generator(params_.benign.make_generator(params_.mesh, mix64(seed ^ 1)));
    for (std::size_t k = 0; k < legs_.size(); ++k) {
      auto* attack =
          sim.emplace_generator<traffic::FloodingAttack>(legs_[k], mix64(seed ^ (3 + k)));
      attack->set_active(false);  // dynamics switch legs on via on_cycle
      attacks_.push_back(attack);
    }
  }

  [[nodiscard]] std::vector<NodeId> all_attackers() const override {
    std::vector<NodeId> nodes;
    for (const auto& leg : legs_) {
      nodes.insert(nodes.end(), leg.attackers.begin(), leg.attackers.end());
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    return nodes;
  }

 protected:
  [[nodiscard]] bool started(noc::Cycle at) const noexcept { return at >= params_.attack_start; }

  ScenarioParams params_;
  std::vector<traffic::AttackScenario> legs_;      ///< fixed at construction
  std::vector<traffic::FloodingAttack*> attacks_;  ///< live handles, one per leg
};

/// The paper's threat model: fixed attackers, fixed victim, fixed FIR.
class StaticFdos final : public FdosScenarioBase {
 public:
  StaticFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("static", params) {
    legs_.push_back(traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                            mix64(seed))[0]);
  }

  void on_cycle(noc::Cycle now) override { attacks_[0]->set_active(started(now)); }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }
};

/// On/off square-wave flooding: `burst_duty` of every `burst_period` on.
/// Stresses probation — a defense that releases too eagerly re-admits the
/// attacker exactly when the next burst fires.
class TransientFdos final : public FdosScenarioBase {
 public:
  TransientFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("transient", params) {
    assert(params.burst_period > 0);
    legs_.push_back(traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                            mix64(seed))[0]);
  }

  void on_cycle(noc::Cycle now) override { attacks_[0]->set_active(burst_on(now)); }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return burst_on(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  [[nodiscard]] bool burst_on(noc::Cycle at) const noexcept {
    if (!started(at)) return false;
    const auto phase = (at - params_.attack_start) % params_.burst_period;
    return static_cast<double>(phase) <
           params_.burst_duty * static_cast<double>(params_.burst_period);
  }
};

/// The same attackers retarget a new victim every `sweep_period` cycles —
/// the flooding route, and therefore the segmentation signature, moves.
class VictimSweepFdos final : public FdosScenarioBase {
 public:
  VictimSweepFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("victim-sweep", params) {
    assert(params.sweep_period > 0 && params.sweep_victims >= 1);
    Rng rng(mix64(seed));
    const auto base = traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                              rng.engine()())[0];
    legs_.push_back(base);
    // Further victims: distinct, off the attacker set, >= 2 hops from every
    // attacker so each leg leaves a localizable route. Bounded attempts —
    // a small mesh may not hold sweep_victims such victims, in which case
    // the sweep degrades to the legs that fit.
    const auto n = params.mesh.node_count();
    for (std::int64_t attempt = 0; attempt < 64LL * params.sweep_victims &&
                                   static_cast<std::int32_t>(legs_.size()) < params.sweep_victims;
         ++attempt) {
      const auto cand = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      const bool is_attacker = std::find(base.attackers.begin(), base.attackers.end(), cand) !=
                               base.attackers.end();
      const bool used = std::any_of(legs_.begin(), legs_.end(),
                                    [&](const auto& leg) { return leg.victim == cand; });
      const bool too_close = std::any_of(base.attackers.begin(), base.attackers.end(),
                                         [&](NodeId a) {
                                           return params.mesh.hop_distance(a, cand) < 2;
                                         });
      if (is_attacker || used || too_close) continue;
      traffic::AttackScenario leg = base;
      leg.victim = cand;
      legs_.push_back(std::move(leg));
    }
  }

  void on_cycle(noc::Cycle now) override {
    const auto idx = current_target(now);
    for (std::size_t k = 0; k < attacks_.size(); ++k) {
      attacks_[k]->set_active(idx == static_cast<std::int64_t>(k));
    }
  }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  /// Active target index at `at`, or -1 before the attack starts.
  [[nodiscard]] std::int64_t current_target(noc::Cycle at) const noexcept {
    if (!started(at)) return -1;
    return ((at - params_.attack_start) / params_.sweep_period) %
           static_cast<std::int64_t>(legs_.size());
  }
};

/// Colluding attackers flooding *different* victims simultaneously — the
/// multi-route case the single-victim TLM table only covers via the flow
/// graph generalization.
class MultiVictimFdos final : public FdosScenarioBase {
 public:
  MultiVictimFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("multi-victim", params) {
    // Draw independent single-attacker legs, keeping attacker nodes
    // distinct across legs (victims may repeat — that is allowed
    // collusion). Bounded attempts: on a mesh too small for
    // num_attackers distinct placements, fewer legs result.
    Rng rng(mix64(seed));
    std::vector<NodeId> used;
    for (std::int64_t attempt = 0; attempt < 64LL * params.num_attackers &&
                                   static_cast<std::int32_t>(legs_.size()) < params.num_attackers;
         ++attempt) {
      const auto cand = traffic::make_scenarios(params.mesh, 1, 1, params.fir, rng.engine()())[0];
      if (std::find(used.begin(), used.end(), cand.attackers[0]) != used.end()) continue;
      used.push_back(cand.attackers[0]);
      legs_.push_back(cand);
    }
  }

  void on_cycle(noc::Cycle now) override {
    for (auto* a : attacks_) a->set_active(started(now));
  }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    if (!started(at)) return {};
    return all_attackers();
  }
};

/// FIR climbs linearly from ramp_start_fir to the full rate — a stealthy
/// attacker probing how much pressure goes undetected.
class RampFdos final : public FdosScenarioBase {
 public:
  RampFdos(const ScenarioParams& params, std::uint64_t seed) : FdosScenarioBase("ramp", params) {
    legs_.push_back(traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                            mix64(seed))[0]);
  }

  void on_cycle(noc::Cycle now) override {
    auto* attack = attacks_[0];
    if (!started(now)) {
      attack->set_active(false);
      return;
    }
    attack->set_active(true);
    attack->set_fir(fir_at(now));
  }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  [[nodiscard]] double fir_at(noc::Cycle at) const noexcept {
    if (params_.ramp_cycles <= 0) return params_.fir;
    const double frac = std::min(1.0, static_cast<double>(at - params_.attack_start) /
                                          static_cast<double>(params_.ramp_cycles));
    return params_.ramp_start_fir + (params_.fir - params_.ramp_start_fir) * frac;
  }
};

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
  add("static", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<StaticFdos>(p, s);
  });
  add("transient", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<TransientFdos>(p, s);
  });
  add("victim-sweep", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<VictimSweepFdos>(p, s);
  });
  add("multi-victim", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<MultiVictimFdos>(p, s);
  });
  add("ramp", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<RampFdos>(p, s);
  });
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

bool ScenarioRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::unique_ptr<Scenario> ScenarioRegistry::make(std::string_view name,
                                                 const ScenarioParams& params,
                                                 std::uint64_t seed) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(params, seed);
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::vector<std::string> builtin_scenario_families() {
  return {"static", "transient", "victim-sweep", "multi-victim", "ramp"};
}

}  // namespace dl2f::runtime
