#include "runtime/scenario.hpp"

#include <algorithm>
#include <cassert>

#include "traffic/evasive.hpp"

namespace dl2f::runtime {
namespace {

/// Shared plumbing: the attack "legs" (one AttackScenario each) are fixed
/// at construction — ground truth is queryable before install() — and
/// install() materializes one FloodingAttack generator per leg.
class FdosScenarioBase : public Scenario {
 public:
  FdosScenarioBase(std::string family, const ScenarioParams& params)
      : Scenario(std::move(family)), params_(params) {}

  void install(traffic::Simulation& sim, std::uint64_t seed) override {
    assert(attacks_.empty() && "install() must be called exactly once");
    sim.add_generator(params_.benign.make_generator(params_.mesh, mix64(seed ^ 1)));
    for (std::size_t k = 0; k < legs_.size(); ++k) {
      auto* attack =
          sim.emplace_generator<traffic::FloodingAttack>(legs_[k], mix64(seed ^ (3 + k)));
      attack->set_active(false);  // dynamics switch legs on via on_cycle
      attacks_.push_back(attack);
    }
  }

  [[nodiscard]] std::vector<NodeId> all_attackers() const override {
    std::vector<NodeId> nodes;
    for (const auto& leg : legs_) {
      nodes.insert(nodes.end(), leg.attackers.begin(), leg.attackers.end());
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    return nodes;
  }

 protected:
  [[nodiscard]] bool started(noc::Cycle at) const noexcept { return at >= params_.attack_start; }

  ScenarioParams params_;
  std::vector<traffic::AttackScenario> legs_;      ///< fixed at construction
  std::vector<traffic::FloodingAttack*> attacks_;  ///< live handles, one per leg
};

/// The paper's threat model: fixed attackers, fixed victim, fixed FIR.
class StaticFdos final : public FdosScenarioBase {
 public:
  StaticFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("static", params) {
    legs_.push_back(traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                            mix64(seed))[0]);
  }

  void on_cycle(noc::Cycle now) override { attacks_[0]->set_active(started(now)); }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }
};

/// On/off square-wave flooding: `burst_duty` of every `burst_period` on.
/// Stresses probation — a defense that releases too eagerly re-admits the
/// attacker exactly when the next burst fires.
class TransientFdos final : public FdosScenarioBase {
 public:
  TransientFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("transient", params) {
    assert(params.burst_period > 0);
    legs_.push_back(traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                            mix64(seed))[0]);
  }

  void on_cycle(noc::Cycle now) override { attacks_[0]->set_active(burst_on(now)); }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return burst_on(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  [[nodiscard]] bool burst_on(noc::Cycle at) const noexcept {
    if (!started(at)) return false;
    const auto phase = (at - params_.attack_start) % params_.burst_period;
    return static_cast<double>(phase) <
           params_.burst_duty * static_cast<double>(params_.burst_period);
  }
};

/// The same attackers retarget a new victim every `sweep_period` cycles —
/// the flooding route, and therefore the segmentation signature, moves.
class VictimSweepFdos final : public FdosScenarioBase {
 public:
  VictimSweepFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("victim-sweep", params) {
    assert(params.sweep_period > 0 && params.sweep_victims >= 1);
    Rng rng(mix64(seed));
    const auto base = traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                              rng.engine()())[0];
    legs_.push_back(base);
    // Further victims: distinct, off the attacker set, >= 2 hops from every
    // attacker so each leg leaves a localizable route. Bounded attempts —
    // a small mesh may not hold sweep_victims such victims, in which case
    // the sweep degrades to the legs that fit.
    const auto n = params.mesh.node_count();
    for (std::int64_t attempt = 0; attempt < 64LL * params.sweep_victims &&
                                   static_cast<std::int32_t>(legs_.size()) < params.sweep_victims;
         ++attempt) {
      const auto cand = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      const bool is_attacker = std::find(base.attackers.begin(), base.attackers.end(), cand) !=
                               base.attackers.end();
      const bool used = std::any_of(legs_.begin(), legs_.end(),
                                    [&](const auto& leg) { return leg.victim == cand; });
      const bool too_close = std::any_of(base.attackers.begin(), base.attackers.end(),
                                         [&](NodeId a) {
                                           return params.mesh.hop_distance(a, cand) < 2;
                                         });
      if (is_attacker || used || too_close) continue;
      traffic::AttackScenario leg = base;
      leg.victim = cand;
      legs_.push_back(std::move(leg));
    }
  }

  void on_cycle(noc::Cycle now) override {
    const auto idx = current_target(now);
    for (std::size_t k = 0; k < attacks_.size(); ++k) {
      attacks_[k]->set_active(idx == static_cast<std::int64_t>(k));
    }
  }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  /// Active target index at `at`, or -1 before the attack starts.
  [[nodiscard]] std::int64_t current_target(noc::Cycle at) const noexcept {
    if (!started(at)) return -1;
    return ((at - params_.attack_start) / params_.sweep_period) %
           static_cast<std::int64_t>(legs_.size());
  }
};

/// Colluding attackers flooding *different* victims simultaneously — the
/// multi-route case the single-victim TLM table only covers via the flow
/// graph generalization.
class MultiVictimFdos final : public FdosScenarioBase {
 public:
  MultiVictimFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("multi-victim", params) {
    // Draw independent single-attacker legs, keeping attacker nodes
    // distinct across legs (victims may repeat — that is allowed
    // collusion). Bounded attempts: on a mesh too small for
    // num_attackers distinct placements, fewer legs result.
    Rng rng(mix64(seed));
    std::vector<NodeId> used;
    for (std::int64_t attempt = 0; attempt < 64LL * params.num_attackers &&
                                   static_cast<std::int32_t>(legs_.size()) < params.num_attackers;
         ++attempt) {
      const auto cand = traffic::make_scenarios(params.mesh, 1, 1, params.fir, rng.engine()())[0];
      if (std::find(used.begin(), used.end(), cand.attackers[0]) != used.end()) continue;
      used.push_back(cand.attackers[0]);
      legs_.push_back(cand);
    }
  }

  void on_cycle(noc::Cycle now) override {
    for (auto* a : attacks_) a->set_active(started(now));
  }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    if (!started(at)) return {};
    return all_attackers();
  }
};

/// FIR climbs linearly from ramp_start_fir to the full rate — a stealthy
/// attacker probing how much pressure goes undetected.
class RampFdos final : public FdosScenarioBase {
 public:
  RampFdos(const ScenarioParams& params, std::uint64_t seed) : FdosScenarioBase("ramp", params) {
    legs_.push_back(traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                            mix64(seed))[0]);
  }

  void on_cycle(noc::Cycle now) override {
    auto* attack = attacks_[0];
    if (!started(now)) {
      attack->set_active(false);
      return;
    }
    attack->set_active(true);
    attack->set_fir(fir_at(now));
  }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  [[nodiscard]] double fir_at(noc::Cycle at) const noexcept {
    if (params_.ramp_cycles <= 0) return params_.fir;
    const double frac = std::min(1.0, static_cast<double>(at - params_.attack_start) /
                                          static_cast<double>(params_.ramp_cycles));
    return params_.ramp_start_fir + (params_.fir - params_.ramp_start_fir) * frac;
  }
};

/// Detection-aware duty cycling at sub-window scale: the attack floods
/// pulse_duty of every pulse_period cycles (period << window_cycles), so
/// the window-averaged VCO sees only duty * FIR pressure while queues
/// still spike every burst. The generator gates itself off the mesh
/// clock — on_cycle has nothing to drive.
class PulseFdos final : public FdosScenarioBase {
 public:
  PulseFdos(const ScenarioParams& params, std::uint64_t seed) : FdosScenarioBase("pulse", params) {
    assert(params.pulse_period > 0);
    legs_.push_back(traffic::make_scenarios(params.mesh, 1, params.num_attackers, params.fir,
                                            mix64(seed))[0]);
    schedule_.start = params.attack_start;
    schedule_.period = params.pulse_period;
    schedule_.duty = params.pulse_duty;
    schedule_.phase = params.pulse_phase;
  }

  void install(traffic::Simulation& sim, std::uint64_t seed) override {
    sim.add_generator(params_.benign.make_generator(params_.mesh, mix64(seed ^ 1)));
    sim.emplace_generator<traffic::PulsedFloodingAttack>(legs_[0], schedule_, mix64(seed ^ 3));
  }

  void on_cycle(noc::Cycle) override {}

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return schedule_.on(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  traffic::PulseSchedule schedule_;
};

/// Sub-threshold stealth ramp: FIR creeps from ramp_start_fir to the
/// stealth_fir ceiling and stays there — it never shows the detector the
/// saturating rates it was trained on.
class StealthRampFdos final : public FdosScenarioBase {
 public:
  StealthRampFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("stealth-ramp", params) {
    ramp_.start = params.attack_start;
    ramp_.ramp_cycles = params.stealth_ramp_cycles;
    ramp_.ceiling = std::clamp(params.stealth_fir, 0.0, 1.0);
    ramp_.start_fir = std::min(params.ramp_start_fir, ramp_.ceiling);
    traffic::AttackScenario leg = traffic::make_scenarios(
        params.mesh, 1, params.num_attackers, ramp_.ceiling, mix64(seed))[0];
    legs_.push_back(std::move(leg));
  }

  void on_cycle(noc::Cycle now) override {
    auto* attack = attacks_[0];
    attack->set_active(started(now));
    if (started(now)) attack->set_fir(ramp_.fir_at(now));
  }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  traffic::StealthRamp ramp_;
};

/// Colluding low-rate multi-source flood: `colluders` distinct sources
/// share a victim, each at aggregate/colluders — every individual source
/// injects within the benign rate range; only the aggregate at the
/// victim's ingress saturates.
class ColludingFdos final : public FdosScenarioBase {
 public:
  ColludingFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("colluding", params) {
    legs_.push_back(traffic::make_colluding_scenario(
        params.mesh, params.colluders, params.colluding_aggregate_fir, mix64(seed)));
  }

  void on_cycle(noc::Cycle now) override { attacks_[0]->set_active(started(now)); }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }
};

/// Benign mimicry: attackers inject along the benign SyntheticPattern's
/// own destination map, so the attack's spatial signature matches the
/// workload and only the added volume differs. PARSEC workloads (no
/// pattern map) are mimicked as UniformRandom.
class MimicryFdos final : public FdosScenarioBase {
 public:
  MimicryFdos(const ScenarioParams& params, std::uint64_t seed)
      : FdosScenarioBase("mimicry", params) {
    // make_scenarios picks distinct, well-separated attacker nodes; the
    // leg's victim is unused (destinations come from the pattern).
    legs_.push_back(traffic::make_scenarios(params.mesh, 1, params.num_attackers,
                                            params.mimicry_fir, mix64(seed))[0]);
    if (const auto* stp = std::get_if<traffic::SyntheticPattern>(&params.benign.kind)) {
      pattern_ = *stp;
    }
  }

  void install(traffic::Simulation& sim, std::uint64_t seed) override {
    sim.add_generator(params_.benign.make_generator(params_.mesh, mix64(seed ^ 1)));
    mimic_ = sim.emplace_generator<traffic::MimicryAttack>(legs_[0].attackers, pattern_,
                                                           params_.mimicry_fir, mix64(seed ^ 3));
    mimic_->set_active(false);
  }

  void on_cycle(noc::Cycle now) override { mimic_->set_active(started(now)); }

  [[nodiscard]] std::vector<NodeId> active_attackers(noc::Cycle at) const override {
    return started(at) ? legs_[0].attackers : std::vector<NodeId>{};
  }

 private:
  traffic::SyntheticPattern pattern_ = traffic::SyntheticPattern::UniformRandom;
  traffic::MimicryAttack* mimic_ = nullptr;
};

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
  add("static", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<StaticFdos>(p, s);
  });
  add("transient", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<TransientFdos>(p, s);
  });
  add("victim-sweep", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<VictimSweepFdos>(p, s);
  });
  add("multi-victim", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<MultiVictimFdos>(p, s);
  });
  add("ramp", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<RampFdos>(p, s);
  });
  add("pulse", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<PulseFdos>(p, s);
  });
  add("stealth-ramp", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<StealthRampFdos>(p, s);
  });
  add("colluding", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<ColludingFdos>(p, s);
  });
  add("mimicry", [](const ScenarioParams& p, std::uint64_t s) {
    return std::make_unique<MimicryFdos>(p, s);
  });
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

bool ScenarioRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::unique_ptr<Scenario> ScenarioRegistry::make(std::string_view name,
                                                 const ScenarioParams& params,
                                                 std::uint64_t seed) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(params, seed);
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::vector<std::string> builtin_scenario_families() {
  return {"static", "transient", "victim-sweep", "multi-victim", "ramp"};
}

std::vector<std::string> evasive_scenario_families() {
  return {"pulse", "stealth-ramp", "colluding", "mimicry"};
}

std::vector<std::string> all_scenario_families() {
  auto all = builtin_scenario_families();
  for (auto& f : evasive_scenario_families()) all.push_back(std::move(f));
  return all;
}

}  // namespace dl2f::runtime
