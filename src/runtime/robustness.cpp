#include "runtime/robustness.hpp"

#include <iomanip>
#include <sstream>

namespace dl2f::runtime {
namespace {

/// JSON-escape for the benchmark/family names we emit (they are plain
/// ASCII today; quotes and backslashes are escaped defensively).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

RobustnessReport RobustnessReport::from_campaign(const CampaignResult& result,
                                                 const std::vector<std::string>& families,
                                                 const std::vector<std::string>& workloads) {
  RobustnessReport report;
  report.families_ = families;
  report.workloads_ = workloads;
  report.cells_.reserve(families.size() * workloads.size());

  for (const auto& family : families) {
    for (const auto& workload : workloads) {
      RobustnessCell cell;
      cell.family = family;
      cell.workload = workload;
      double acc = 0.0, det_f1 = 0.0, loc_f1 = 0.0, ttm = 0.0, ratio = 0.0;
      std::int64_t n = 0, mitigated = 0, recovered = 0;
      for (const auto& job : result.jobs) {
        if (job.family != family || job.workload != workload) continue;
        ++n;
        acc += job.summary.detection.accuracy;
        det_f1 += job.summary.detection.f1;
        loc_f1 += job.summary.attacker_id.f1;
        if (job.summary.mitigated()) {
          ++mitigated;
          ttm += static_cast<double>(job.summary.time_to_mitigate());
        }
        if (job.summary.recovered() && job.summary.baseline_latency > 0.0) {
          ++recovered;
          ratio += job.summary.recovered_latency / job.summary.baseline_latency;
        }
      }
      cell.jobs = n;
      if (n > 0) {
        const auto dn = static_cast<double>(n);
        cell.detection_accuracy = acc / dn;
        cell.detection_f1 = det_f1 / dn;
        cell.localization_f1 = loc_f1 / dn;
        cell.mitigation_rate = static_cast<double>(mitigated) / dn;
        cell.recovery_rate = static_cast<double>(recovered) / dn;
        if (mitigated > 0) cell.mean_time_to_mitigate = ttm / static_cast<double>(mitigated);
        if (recovered > 0) cell.mean_recovery_ratio = ratio / static_cast<double>(recovered);
      }
      report.cells_.push_back(std::move(cell));
    }
  }
  return report;
}

const RobustnessCell* RobustnessReport::cell(std::string_view family,
                                             std::string_view workload) const {
  for (const auto& c : cells_) {
    if (c.family == family && c.workload == workload) return &c;
  }
  return nullptr;
}

TextTable RobustnessReport::table() const {
  TextTable table({"Family", "Workload", "Jobs", "Det acc", "Det F1", "Loc F1", "Mitigated",
                   "TTM (cyc)", "Recovered", "Rec ratio"});
  for (const auto& c : cells_) {
    // The -1 "never happened" sentinels render as an em dash — visually
    // distinct from both real values and the hyphen used for "no jobs".
    table.add_row({c.family, c.workload, std::to_string(c.jobs),
                   TextTable::cell(c.detection_accuracy), TextTable::cell(c.detection_f1),
                   TextTable::cell(c.localization_f1), TextTable::cell(c.mitigation_rate, 2),
                   c.mean_time_to_mitigate >= 0.0 ? TextTable::cell(c.mean_time_to_mitigate, 0)
                                                  : "—",
                   TextTable::cell(c.recovery_rate, 2),
                   c.mean_recovery_ratio >= 0.0 ? TextTable::cell(c.mean_recovery_ratio, 2)
                                                : "—"});
  }
  return table;
}

TextTable RobustnessReport::detection_matrix() const {
  std::vector<std::string> header{"Det F1"};
  for (const auto& w : workloads_) header.push_back(w);
  TextTable table(std::move(header));
  for (const auto& family : families_) {
    std::vector<std::string> row{family};
    for (const auto& workload : workloads_) {
      const auto* c = cell(family, workload);
      row.push_back(c != nullptr && c->jobs > 0 ? TextTable::cell(c->detection_f1, 2) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::vector<const RobustnessCell*> RobustnessReport::blind_spots(
    double detection_f1_floor) const {
  std::vector<const RobustnessCell*> out;
  for (const auto& c : cells_) {
    if (c.jobs > 0 && c.detection_f1 < detection_f1_floor) out.push_back(&c);
  }
  return out;
}

std::string RobustnessReport::to_json() const {
  // Sentinel convention: mean_time_to_mitigate and mean_recovery_ratio
  // emit -1.000000 for cells where NO job of the cell ever mitigated
  // (resp. recovered) — "never happened", not a measured duration/ratio.
  // Consumers must treat negative values as absent, as the text table()
  // does by rendering them as an em dash. All other fields are plain
  // means over the cell's jobs (0 when jobs == 0).
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  os << "{\n    \"families\": [";
  for (std::size_t i = 0; i < families_.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << json_escape(families_[i]) << '"';
  }
  os << "],\n    \"workloads\": [";
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << json_escape(workloads_[i]) << '"';
  }
  os << "],\n    \"cells\": [";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto& c = cells_[i];
    os << (i == 0 ? "" : ",") << "\n      {\"family\": \"" << json_escape(c.family)
       << "\", \"workload\": \"" << json_escape(c.workload) << "\", \"jobs\": " << c.jobs
       << ", \"detection_accuracy\": " << c.detection_accuracy
       << ", \"detection_f1\": " << c.detection_f1
       << ", \"localization_f1\": " << c.localization_f1
       << ", \"mitigation_rate\": " << c.mitigation_rate
       << ", \"mean_time_to_mitigate\": " << c.mean_time_to_mitigate
       << ", \"recovery_rate\": " << c.recovery_rate
       << ", \"mean_recovery_ratio\": " << c.mean_recovery_ratio << "}";
  }
  os << "\n    ]\n  }";
  return os.str();
}

}  // namespace dl2f::runtime
