// The online closed loop: detect -> localize -> quarantine -> recover.
//
// The offline pipeline (core::PipelineEngine scored through a
// core::PipelineSession) rates monitoring windows after the fact;
// DefenseRuntime runs it *against a live simulation* and acts on the
// result — it owns a session of its own, so many runtimes can share one
// trained engine. Each monitoring window it
//   (1) advances the Simulation window_cycles (driving the attached
//       Scenario's dynamics cycle by cycle),
//   (2) samples VCO/BOC frames exactly as the training datasets do,
//   (3) runs the full detection/localization round, and
//   (4) mitigates on per-node evidence: a node the TLM names in
//       quarantine_votes consecutive windows is quarantined at its network
//       interface (Mesh::set_quarantined); a fenced node the TLM stops
//       naming for probation_windows consecutive windows is released — so
//       false positives recover even while a separate attack keeps the
//       detector busy, and a returning flooder is re-fenced as soon as it
//       is implicated again.
//
// Per-window benign latency (mean and p50/p99 via histogram diffs) is
// recorded so recovery — "benign latency back within recovery_ratio of its
// pre-attack baseline" — is measurable, not anecdotal.
#pragma once

#include <vector>

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "monitor/sampler.hpp"
#include "monitor/window_history.hpp"
#include "runtime/scenario.hpp"
#include "traffic/simulation.hpp"

namespace dl2f::runtime {

struct DefenseConfig {
  std::int64_t window_cycles = 1000;  ///< monitoring window length (paper: 1000 for STP)
  bool mitigation_enabled = true;     ///< false = monitor-only (probation still releases)
  std::int32_t quarantine_votes = 1;  ///< consecutive windows naming a node before fencing
  std::int32_t probation_windows = 3; ///< consecutive windows not naming a fenced node before release
  /// Windows after a new quarantine action during which the temporal
  /// head's sequence verdict is suppressed (the single-window verdict
  /// stays live). The sequence head reads multi-window history, so it
  /// necessarily lags the fence: the first post-fence window pairs
  /// residual drain congestion with attack history — the head's one
  /// systematic false positive. Any attacker the fence missed still
  /// floods the current window and is caught by the single-window path.
  std::int32_t temporal_cooldown_windows = 1;
  /// Score windows through the engine's int8 quantized detector/localizer
  /// instead of float32. Requires an engine carrying quantized weights
  /// (PipelineEngine::quantize() or a snapshot with quant blobs).
  core::PipelineSession::Precision precision = core::PipelineSession::Precision::Float32;
};

/// Everything observed and done in one monitoring window.
struct WindowRecord {
  std::int64_t index = 0;
  noc::Cycle start = 0;
  noc::Cycle end = 0;

  bool detected = false;
  float probability = 0.0F;
  /// Temporal-head sigmoid over the sliding window sequence (0 when the
  /// engine has no temporal head).
  float sequence_probability = 0.0F;
  std::vector<NodeId> tlm_attackers;  ///< TLM verdict (empty when not detected)

  std::vector<NodeId> newly_quarantined;
  std::vector<NodeId> released;
  std::vector<NodeId> quarantined;  ///< fence state after this window's actions

  double benign_latency = 0.0;  ///< mean benign packet latency inside this window
  double benign_p50 = 0.0;
  double benign_p99 = 0.0;
  std::int64_t benign_packets = 0;

  /// Ground truth (scenario-attached runs): attackers whose flooding was on
  /// at any cycle of the window and who were not fenced throughout it —
  /// i.e. attack traffic actually reached the network this window.
  bool truth_attack = false;
  std::vector<NodeId> truth_attackers;
};

/// Aggregate judgment of one run, in the units the campaign tables report.
struct DefenseSummary {
  std::int64_t windows = 0;
  core::Metrics4 detection;    ///< per-window verdicts vs ground truth
  core::Metrics4 attacker_id;  ///< TLM attacker sets vs ground truth (attack windows)

  noc::Cycle first_attack_cycle = -1;  ///< start of the first true attack window
  noc::Cycle detect_cycle = -1;        ///< end of the first true-positive window
  noc::Cycle mitigate_cycle = -1;  ///< end of the first window with every attacker that had flooded so far fenced
  noc::Cycle recover_cycle = -1;       ///< end of the first recovered window after mitigation

  double baseline_latency = 0.0;   ///< mean benign latency over pre-attack windows
  double baseline_p50 = 0.0;
  double baseline_p99 = 0.0;
  double peak_latency = 0.0;       ///< worst windowed benign latency observed
  double recovered_latency = 0.0;  ///< benign latency in the recovering window
  double recovery_ratio = 2.0;     ///< recovered means latency <= ratio * baseline

  /// Fence accounting (the serving SLO's cost side). A *fence event* is one
  /// node entering quarantine (a WindowRecord::newly_quarantined entry); a
  /// *false fence* is a fence event on a node that had never flooded up to
  /// and including that window — judged against the cumulative ground-truth
  /// attacker set, not the per-window one, so fencing a periodic attacker
  /// during its dormant phase is correctly NOT counted as false. The
  /// false-fence *rate* is normalized per monitoring window (events per
  /// window), which makes soak runs of different lengths comparable.
  std::int64_t fence_events = 0;
  std::int64_t false_fence_events = 0;
  [[nodiscard]] double false_fence_rate() const noexcept {
    return windows > 0 ? static_cast<double>(false_fence_events) / static_cast<double>(windows)
                       : 0.0;
  }

  [[nodiscard]] bool mitigated() const noexcept { return mitigate_cycle >= 0; }
  [[nodiscard]] bool recovered() const noexcept { return recover_cycle >= 0; }
  /// Cycles from first attack traffic to full mitigation (-1 when never).
  [[nodiscard]] noc::Cycle time_to_mitigate() const noexcept {
    return mitigated() ? mitigate_cycle - first_attack_cycle : -1;
  }
  /// End-to-end detection latency: cycles from the first attack traffic to
  /// the end of the first true-positive window (-1 when never detected).
  [[nodiscard]] noc::Cycle detection_latency() const noexcept {
    return (detect_cycle >= 0 && first_attack_cycle >= 0) ? detect_cycle - first_attack_cycle
                                                          : -1;
  }
};

class DefenseRuntime {
 public:
  /// `sim` and `engine` are borrowed and must outlive the runtime; the
  /// engine is expected to be trained for sim's mesh shape. The runtime
  /// owns its own PipelineSession, so any number of runtimes (one per
  /// worker, say) can share one engine.
  DefenseRuntime(traffic::Simulation& sim, const core::PipelineEngine& engine,
                 DefenseConfig cfg = {});

  /// Deprecated shim overload: borrows the fence's engine.
  DefenseRuntime(traffic::Simulation& sim, core::Dl2Fence& fence, DefenseConfig cfg = {});

  /// Optional: attach the scenario driving the attack. Enables ground-truth
  /// scoring and lets the runtime advance the scenario's dynamics. Borrowed.
  void attach_scenario(Scenario* scenario) { scenario_ = scenario; }

  [[nodiscard]] const DefenseConfig& config() const noexcept { return cfg_; }

  /// Run one monitoring window end to end; returns a copy of the record
  /// (the full sequence stays in history()).
  WindowRecord run_window();
  void run_windows(std::int32_t count);

  /// Operator override: fence a node immediately (it still goes through
  /// normal probation release).
  void quarantine_now(NodeId node);

  [[nodiscard]] const std::vector<WindowRecord>& history() const noexcept { return history_; }
  [[nodiscard]] std::vector<NodeId> quarantined() const { return sim_.mesh().quarantined_nodes(); }

  [[nodiscard]] DefenseSummary summarize(double recovery_ratio = 2.0) const;

 private:
  void update_mitigation(const core::RoundResult& round, WindowRecord& rec);

  traffic::Simulation& sim_;
  core::PipelineSession session_;  ///< per-runtime scratch over the shared engine
  DefenseConfig cfg_;
  monitor::FeatureSampler sampler_;
  Scenario* scenario_ = nullptr;
  /// Sliding window-sequence buffer feeding the temporal head (length 1
  /// when the engine has none — the newest window is read back from it
  /// either way, so both paths share one sampling flow).
  monitor::WindowHistory windows_;

  std::vector<std::int32_t> votes_;         ///< per-node consecutive implicated windows
  std::vector<std::int32_t> clean_streak_;  ///< per-node consecutive unimplicated windows while fenced
  std::int32_t temporal_cooldown_ = 0;      ///< sequence-verdict suppression windows left
  std::vector<WindowRecord> history_;

  // Benign-stats snapshot at the last window boundary (for windowed deltas).
  double prev_benign_sum_ = 0.0;
  std::int64_t prev_benign_count_ = 0;
  std::vector<std::int64_t> prev_hist_;
};

}  // namespace dl2f::runtime
