// Adaptive-attacker robustness matrix: per (scenario family × benign
// workload) aggregation of a three-axis campaign.
//
// The evasive families (traffic/evasive.hpp) are the first workload where
// the detector is *expected* to partially fail — this report is the
// artifact that shows where. Each cell averages the seeds of one
// (family, workload) grid coordinate into the four questions the defense
// must answer: did we detect (accuracy/F1), did we name the right nodes
// (localization F1), how fast did we fence (time-to-mitigate), and did
// benign latency come back (recovery ratio).
//
// Output is deterministic: a fixed-precision TextTable for humans, a
// family × workload detection-F1 matrix for at-a-glance blind-spot
// scanning, and a machine-readable JSON payload (BENCH_robustness.json,
// emitted by bench/bench_robustness.cpp and gated in CI).
#pragma once

#include <string>
#include <vector>

#include "runtime/campaign.hpp"

namespace dl2f::runtime {

/// One (family × workload) cell, averaged over the seed axis.
struct RobustnessCell {
  std::string family;
  std::string workload;
  std::int64_t jobs = 0;

  double detection_accuracy = 0.0;  ///< mean per-window verdict accuracy
  double detection_f1 = 0.0;        ///< mean per-window verdict F1
  double localization_f1 = 0.0;     ///< mean TLM attacker-set F1 (attack windows)
  double mitigation_rate = 0.0;     ///< fraction of jobs fully fenced
  double mean_time_to_mitigate = -1.0;  ///< cycles, over mitigated jobs (-1: none)
  double recovery_rate = 0.0;           ///< fraction of jobs recovered
  double mean_recovery_ratio = -1.0;    ///< recovered/baseline latency (-1: none)
};

class RobustnessReport {
 public:
  /// Aggregate `result` over the given axis orders. Jobs whose family or
  /// workload is not listed are ignored; listed cells with no jobs keep
  /// jobs == 0 (deterministic shape regardless of campaign content).
  static RobustnessReport from_campaign(const CampaignResult& result,
                                        const std::vector<std::string>& families,
                                        const std::vector<std::string>& workloads);

  [[nodiscard]] const std::vector<std::string>& families() const noexcept { return families_; }
  [[nodiscard]] const std::vector<std::string>& workloads() const noexcept { return workloads_; }
  /// Family-major, workload-minor; size = families × workloads.
  [[nodiscard]] const std::vector<RobustnessCell>& cells() const noexcept { return cells_; }

  /// Cell lookup; nullptr when either axis value is not in the report.
  [[nodiscard]] const RobustnessCell* cell(std::string_view family,
                                           std::string_view workload) const;

  /// Full per-cell table: one row per (family, workload) with every metric.
  [[nodiscard]] TextTable table() const;

  /// Detection-F1 matrix (family rows × workload columns) — the
  /// at-a-glance view of where the detector holds and where it fails.
  [[nodiscard]] TextTable detection_matrix() const;

  /// Cells where the detector partially fails: detection F1 below
  /// `detection_f1_floor` (cells with zero jobs are skipped).
  [[nodiscard]] std::vector<const RobustnessCell*> blind_spots(
      double detection_f1_floor = 0.5) const;

  /// Machine-readable JSON object (families, workloads, one record per
  /// cell) with fixed key order and fixed precision — byte-identical for
  /// equal campaigns.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<std::string> families_;
  std::vector<std::string> workloads_;
  std::vector<RobustnessCell> cells_;
};

}  // namespace dl2f::runtime
