#include "runtime/campaign.hpp"

#include <atomic>
#include <cassert>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/detector.hpp"
#include "core/localizer.hpp"
#include "monitor/dataset.hpp"
#include "temporal/adversarial.hpp"

namespace dl2f::runtime {
namespace {

JobResult run_job(const CampaignConfig& cfg, const core::PipelineEngine& engine,
                  const std::string& family, const monitor::Benchmark& workload,
                  std::uint64_t seed) {
  JobResult result;
  result.family = family;
  result.workload = workload.name();
  result.seed = seed;

  // Each job's randomness is a pure function of its grid coordinates —
  // never of worker id or execution order — so any thread count replays
  // the identical campaign. The workload hash goes through mix64 so the
  // two string hashes cannot cancel each other under the XOR.
  const std::uint64_t job_seed = seed ^ fnv1a(family) ^ mix64(fnv1a(result.workload));
  ScenarioParams params = cfg.params;
  params.benign = workload;
  auto scenario = ScenarioRegistry::instance().make(family, params, job_seed);
  if (scenario == nullptr) {
    // A registered factory may still return nullptr for params it cannot
    // serve; surface that as a diagnosable error, not a worker crash.
    throw std::invalid_argument("run_campaign: scenario factory '" + family +
                                "' returned nullptr for the campaign params");
  }

  noc::MeshConfig mesh_cfg;
  mesh_cfg.shape = cfg.params.mesh;
  mesh_cfg.router = cfg.router;
  mesh_cfg.shards = cfg.mesh_shards;
  mesh_cfg.step_threads = cfg.mesh_step_threads;
  traffic::Simulation sim(mesh_cfg);
  scenario->install(sim, job_seed ^ 0x9e3779b97f4a7c15ULL);

  DefenseRuntime runtime(sim, engine, cfg.defense);
  runtime.attach_scenario(scenario.get());
  runtime.run_windows(cfg.windows);
  result.summary = runtime.summarize(cfg.recovery_ratio);
  return result;
}

}  // namespace

ModelSnapshot ModelSnapshot::capture(const core::PipelineEngine& engine) {
  ModelSnapshot snap;
  snap.config = engine.config();
  std::ostringstream det, loc;
  engine.detector().model().save(det);
  engine.localizer().model().save(loc);
  snap.detector_weights = det.str();
  snap.localizer_weights = loc.str();
  if (engine.has_temporal()) {
    std::ostringstream tmp;
    engine.temporal().model().save(tmp);
    snap.temporal_weights = tmp.str();
  }
  if (engine.has_quantized()) {
    std::ostringstream dq, lq;
    engine.detector_quant().save(dq);
    engine.localizer_quant().save(lq);
    snap.detector_quant_weights = dq.str();
    snap.localizer_quant_weights = lq.str();
  }
  return snap;
}

ModelSnapshot ModelSnapshot::capture(const core::Dl2Fence& fence) {
  return capture(fence.engine());
}

core::PipelineEngine ModelSnapshot::make_engine() const {
  std::istringstream det(detector_weights), loc(localizer_weights);
  auto engine = [&]() -> core::PipelineEngine {
    if (!temporal_weights.empty()) {
      std::istringstream tmp(temporal_weights);
      return core::PipelineEngine(config, det, loc, tmp);
    }
    return core::PipelineEngine(config, det, loc);
  }();
  if (!detector_quant_weights.empty()) {
    std::istringstream dq(detector_quant_weights), lq(localizer_quant_weights);
    engine.load_quantized(dq, lq);
  }
  return engine;
}

core::Dl2Fence ModelSnapshot::restore() const {
  core::Dl2Fence fence(config);
  std::istringstream det(detector_weights), loc(localizer_weights);
  if (!fence.detector().model().load(det) || !fence.localizer().model().load(loc)) {
    // A silently garbage-weighted pipeline would run the whole campaign
    // and emit meaningless metrics; fail loudly instead.
    throw std::runtime_error("ModelSnapshot::restore: weight blob does not match the model");
  }
  if (!temporal_weights.empty()) {
    std::istringstream tmp(temporal_weights);
    if (!fence.has_temporal() || !fence.temporal().model().load(tmp)) {
      throw std::runtime_error("ModelSnapshot::restore: temporal blob does not match the model");
    }
  }
  return fence;
}

ModelSnapshot train_model_snapshot(const MeshShape& mesh, const monitor::Benchmark& benign,
                                   const TrainPreset& preset) {
  return train_model_snapshot(mesh, std::vector<monitor::Benchmark>{benign}, preset);
}

ModelSnapshot train_model_snapshot(const MeshShape& mesh,
                                   const std::vector<monitor::Benchmark>& benigns,
                                   const TrainPreset& preset) {
  monitor::DatasetConfig data_cfg;
  data_cfg.mesh = mesh;
  data_cfg.scenarios_per_benchmark = preset.scenarios;
  data_cfg.benign_samples_per_run = preset.benign_samples;
  data_cfg.attack_samples_per_run = preset.attack_samples;
  data_cfg.seed = preset.seed;
  const monitor::Dataset data = monitor::generate_dataset(data_cfg, benigns);

  core::Dl2FenceConfig fence_cfg = core::Dl2FenceConfig::paper_default(mesh);
  fence_cfg.enable_temporal = preset.temporal;
  fence_cfg.temporal.sequence_length = preset.sequence_length;
  core::Dl2Fence fence(fence_cfg);
  core::TrainConfig det_cfg;
  det_cfg.epochs = preset.detector_epochs;
  det_cfg.seed = preset.seed ^ 0x42;
  det_cfg.threads = preset.threads;
  core::train_detector(fence.detector(), data, det_cfg);
  core::LocalizerTrainConfig loc_cfg;
  loc_cfg.epochs = preset.localizer_epochs;
  loc_cfg.seed = preset.seed ^ 0x43;
  loc_cfg.threads = preset.threads;
  core::train_localizer(fence.localizer(), data, loc_cfg);

  if (preset.temporal) {
    // Adversarial retraining preset: the sequence grid mixes every
    // registered family — static AND evasive — over the same benign
    // workloads, so the temporal head sees pulse troughs, ramp onsets and
    // colluding low-rate floods at training time.
    temporal::SequenceDatasetConfig seq_cfg;
    seq_cfg.mesh = mesh;
    seq_cfg.sequence_length = preset.sequence_length;
    seq_cfg.windows_per_run = preset.temporal_windows_per_run;
    seq_cfg.runs_per_cell = preset.temporal_runs_per_cell;
    seq_cfg.params.mesh = mesh;
    seq_cfg.seed = preset.seed;
    const std::vector<std::string> families = preset.adversarial_families.empty()
                                                  ? all_scenario_families()
                                                  : preset.adversarial_families;
    const temporal::SequenceDataset seq_data = temporal::generate_sequence_dataset(
        seq_cfg, families, preset.temporal_benigns.empty() ? benigns : preset.temporal_benigns);

    temporal::TemporalTrainConfig tmp_cfg;
    tmp_cfg.epochs = preset.temporal_epochs;
    tmp_cfg.seed = preset.seed ^ 0x44;
    tmp_cfg.threads = preset.threads;
    temporal::train_temporal_detector(fence.temporal(), seq_data, tmp_cfg);
  }
  return ModelSnapshot::capture(fence);
}

CampaignResult run_campaign(const CampaignConfig& cfg, const ModelSnapshot& model) {
  // Validate the grid before any worker spawns: a typo'd family name or a
  // mesh/model mismatch must be a diagnosable error, not a crash inside a
  // worker thread.
  if (!(cfg.params.mesh == model.config.detector.mesh)) {
    throw std::invalid_argument("run_campaign: cfg.params.mesh does not match the model's mesh");
  }
  for (const auto& family : cfg.families) {
    if (!ScenarioRegistry::instance().contains(family)) {
      throw std::invalid_argument("run_campaign: unknown scenario family '" + family + "'");
    }
  }

  // Workload axis: an empty list means "the params.benign workload only"
  // (the original two-axis grid, with the workload still recorded).
  const std::vector<monitor::Benchmark> workloads =
      cfg.workloads.empty() ? std::vector<monitor::Benchmark>{cfg.params.benign} : cfg.workloads;

  struct Job {
    const std::string* family;
    const monitor::Benchmark* workload;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  jobs.reserve(cfg.families.size() * workloads.size() * cfg.seeds.size());
  for (const auto& family : cfg.families) {
    for (const auto& workload : workloads) {
      for (const std::uint64_t seed : cfg.seeds) jobs.push_back(Job{&family, &workload, seed});
    }
  }

  CampaignResult result;
  result.jobs.resize(jobs.size());
  if (jobs.empty()) return result;

  // Touch the registry singleton before spawning workers so its lazy
  // construction never races.
  (void)ScenarioRegistry::instance().names();

  // The campaign's single weight deserialization: one const engine, shared
  // by reference across the whole pool (each job's DefenseRuntime carries
  // its own PipelineSession scratch).
  const core::PipelineEngine engine = model.make_engine();

  const auto worker_count = static_cast<std::size_t>(
      std::max(1, std::min<std::int32_t>(cfg.threads, static_cast<std::int32_t>(jobs.size()))));
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    // Workers share the one engine read-only; scoring state lives in each
    // job's session, so reuse is safe and deterministic. A worker
    // exception (factory refusing the params) stops the pool and is
    // rethrown to the caller instead of terminating the process.
    try {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= jobs.size()) break;
        result.jobs[i] = run_job(cfg, engine, *jobs[i].family, *jobs[i].workload, jobs[i].seed);
      }
    } catch (...) {
      const std::scoped_lock lock(error_mutex);
      if (first_error == nullptr) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  if (worker_count == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(worker_count);
    for (std::size_t t = 0; t < worker_count; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return result;
}

TextTable CampaignResult::family_table(const std::vector<std::string>& family_order) const {
  TextTable table({"Scenario", "Jobs", "Det acc", "Det F1", "Attacker F1", "Mitigated",
                   "TTM (cyc)", "Recovered", "Lat ratio"});
  for (const auto& family : family_order) {
    double det_acc = 0.0, det_f1 = 0.0, atk_f1 = 0.0, ttm = 0.0, ratio = 0.0;
    std::int64_t n = 0, mitigated = 0, recovered = 0;
    for (const auto& job : jobs) {
      if (job.family != family) continue;
      ++n;
      det_acc += job.summary.detection.accuracy;
      det_f1 += job.summary.detection.f1;
      atk_f1 += job.summary.attacker_id.f1;
      if (job.summary.mitigated()) {
        ++mitigated;
        ttm += static_cast<double>(job.summary.time_to_mitigate());
      }
      if (job.summary.recovered() && job.summary.baseline_latency > 0.0) {
        ++recovered;
        ratio += job.summary.recovered_latency / job.summary.baseline_latency;
      }
    }
    if (n == 0) continue;
    const auto dn = static_cast<double>(n);
    table.add_row({family, std::to_string(n), TextTable::cell(det_acc / dn),
                   TextTable::cell(det_f1 / dn), TextTable::cell(atk_f1 / dn),
                   TextTable::cell(static_cast<double>(mitigated) / dn, 2),
                   mitigated > 0 ? TextTable::cell(ttm / static_cast<double>(mitigated), 0)
                                 : "-",
                   TextTable::cell(static_cast<double>(recovered) / dn, 2),
                   recovered > 0 ? TextTable::cell(ratio / static_cast<double>(recovered), 2)
                                 : "-"});
  }
  return table;
}

std::string CampaignResult::serialize() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  for (const auto& job : jobs) {
    const auto& s = job.summary;
    os << job.family << " workload=" << job.workload << " seed=" << job.seed
       << " windows=" << s.windows
       << " det_acc=" << s.detection.accuracy << " det_f1=" << s.detection.f1
       << " atk_f1=" << s.attacker_id.f1 << " first_attack=" << s.first_attack_cycle
       << " detect=" << s.detect_cycle << " mitigate=" << s.mitigate_cycle
       << " recover=" << s.recover_cycle << " baseline=" << s.baseline_latency
       << " baseline_p50=" << s.baseline_p50 << " baseline_p99=" << s.baseline_p99
       << " peak=" << s.peak_latency << " recovered=" << s.recovered_latency
       << " fences=" << s.fence_events << " false_fences=" << s.false_fence_events << '\n';
  }
  return os.str();
}

}  // namespace dl2f::runtime
