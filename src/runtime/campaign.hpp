// Parallel scenario-campaign engine: sweep a scenario-family ×
// benign-workload × seed grid of online defense runs on a worker pool and
// aggregate the results into the repo's TextTable reports.
//
// Scaling model: one complete, independent Simulation + DefenseRuntime per
// job; a worker pool of std::threads drains the job grid through an atomic
// cursor. The trained CNN pair is deserialized ONCE from the ModelSnapshot
// into a single const core::PipelineEngine that every worker shares by
// reference — each job's DefenseRuntime brings its own PipelineSession
// scratch — so jobs never share mutable state and results are
// byte-identical for any worker count (each job's randomness derives only
// from its own grid coordinates).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "runtime/defense.hpp"
#include "runtime/scenario.hpp"

namespace dl2f::runtime {

/// A trained pipeline frozen as bytes — the serialization format for
/// trained weights (files, fleets, checkpoints).
struct ModelSnapshot {
  core::Dl2FenceConfig config;
  std::string detector_weights;
  std::string localizer_weights;
  /// Temporal sequence head blob; empty when the engine has none (the
  /// config's enable_temporal flag and this blob travel together).
  std::string temporal_weights;
  /// Int8 twins (nn::QuantizedSequential::save blobs); empty when the
  /// captured engine was never quantized. Round-trip exactly: restoring
  /// reloads the serialized int8 tensors rather than re-deriving them.
  std::string detector_quant_weights;
  std::string localizer_quant_weights;

  static ModelSnapshot capture(const core::PipelineEngine& engine);
  static ModelSnapshot capture(const core::Dl2Fence& fence);

  /// Deserialize into a shareable engine (the one weight load a campaign
  /// performs). Throws std::runtime_error on an architecture mismatch.
  [[nodiscard]] core::PipelineEngine make_engine() const;

  /// Deprecated: rebuild a live shim pipeline from the frozen weights.
  [[nodiscard]] core::Dl2Fence restore() const;
};

/// Dataset/training budget for train_model_snapshot (defaults sized for
/// an 8x8 mesh in a few tens of seconds).
struct TrainPreset {
  std::int32_t scenarios = 8;
  std::int32_t benign_samples = 3;
  std::int32_t attack_samples = 3;
  std::int32_t detector_epochs = 50;
  std::int32_t localizer_epochs = 25;
  std::uint64_t seed = 0x5eedULL;
  /// Data-parallel training workers (nn::batch_train). The snapshot's
  /// weights are byte-identical for a given seed at any thread count, so
  /// this only trades wall-clock — campaigns stay reproducible.
  std::int32_t threads = 1;

  // --- temporal sequence head (src/temporal) ---

  /// Additionally train a temporal detector on an adversarial
  /// window-sequence grid and carry it in the snapshot. The resulting
  /// engine's DefenseRuntimes score sliding sequences (single-window OR
  /// temporal verdict), closing the evasive families' blind spots.
  bool temporal = false;
  std::int32_t sequence_length = 4;
  std::int32_t temporal_epochs = 30;
  /// Adversarial grid budget (temporal::SequenceDatasetConfig).
  std::int32_t temporal_windows_per_run = 12;
  std::int32_t temporal_runs_per_cell = 2;
  /// Scenario families mixed into the adversarial grid; empty = ALL
  /// registered families (builtin + evasive — the retraining preset).
  std::vector<std::string> adversarial_families;
  /// Benign workloads for the adversarial sequence grid; empty = the same
  /// benigns the base dataset trains on. Set explicitly when the campaign
  /// scores more workloads than the base mix: a sequence head that never
  /// saw a workload's benign rhythm will confidently flag it.
  std::vector<monitor::Benchmark> temporal_benigns;
};

/// Simulate, train and freeze a detector/localizer pair for `mesh` on the
/// given benign workload with FDoS overlays (the paper's VCO+BOC config).
[[nodiscard]] ModelSnapshot train_model_snapshot(const MeshShape& mesh,
                                                 const monitor::Benchmark& benign,
                                                 const TrainPreset& preset);

/// Same, pooling the training dataset over several benign workloads — the
/// model a cross-workload robustness campaign should start from (one
/// workload's traffic statistics do not transfer to the other eight).
[[nodiscard]] ModelSnapshot train_model_snapshot(const MeshShape& mesh,
                                                 const std::vector<monitor::Benchmark>& benigns,
                                                 const TrainPreset& preset);

struct CampaignConfig {
  /// Grid axes: every family must exist in ScenarioRegistry.
  std::vector<std::string> families = builtin_scenario_families();
  /// Third grid axis: benign workloads each (family, seed) cell runs
  /// against. Empty keeps the two-axis grid, running every job on
  /// params.benign (each job's workload name is still recorded).
  std::vector<monitor::Benchmark> workloads;
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  std::int32_t threads = 1;
  std::int32_t windows = 12;  ///< monitoring windows per job
  ScenarioParams params;      ///< params.mesh must match the model's mesh
  DefenseConfig defense;
  noc::RouterConfig router;
  double recovery_ratio = 2.0;
  /// Row-band shards for each job's Mesh::step (noc::MeshConfig::shards);
  /// 0 = auto. Results are bitwise identical at any value.
  std::int32_t mesh_shards = 0;
  /// Stepping threads per mesh (noc::MeshConfig::step_threads). Defaults
  /// to 1 — campaigns already parallelize across jobs, so per-mesh threads
  /// would only oversubscribe the pool. Bitwise identical at any value.
  std::int32_t mesh_step_threads = 1;
};

struct JobResult {
  std::string family;
  std::string workload;  ///< benign workload name (Benchmark::name())
  std::uint64_t seed = 0;
  DefenseSummary summary;
};

struct CampaignResult {
  /// Grid order: family-major, then workload, seed-minor.
  std::vector<JobResult> jobs;

  /// One aggregate row per family: detection accuracy, attacker-id F1,
  /// mitigation/recovery rates, mean time-to-mitigate and latency ratio.
  [[nodiscard]] TextTable family_table(const std::vector<std::string>& family_order) const;

  /// Deterministic fixed-precision dump of every job — equal strings mean
  /// equal campaigns (the worker-count determinism contract).
  [[nodiscard]] std::string serialize() const;
};

/// Run the full grid. Throws std::invalid_argument before any worker
/// starts if a family is not registered or cfg.params.mesh differs from
/// the snapshot's mesh.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& cfg, const ModelSnapshot& model);

}  // namespace dl2f::runtime
