// Named attack-scenario families for the online defense runtime.
//
// The paper evaluates one static threat shape: fixed attackers flooding a
// fixed victim at a fixed FIR. A production defense must survive attacks
// that move — so a Scenario owns the *dynamics* of an attack overlaid on a
// benign workload: it installs generators into a Simulation once, then is
// advanced cycle by cycle (on_cycle) to toggle, retarget or retune the
// flooding mid-run. It also answers the ground-truth question "which
// attacker nodes are flooding at cycle t", which the DefenseRuntime scores
// detection and attacker-identification against.
//
// Families ship through a string-keyed ScenarioRegistry so campaigns can
// name their grid axes ("static", "transient", "victim-sweep",
// "multi-victim", "ramp") and downstream users can register their own.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/benchmark.hpp"
#include "traffic/fdos.hpp"
#include "traffic/simulation.hpp"

namespace dl2f::runtime {

/// Shared knobs of every scenario family; per-family fields are ignored by
/// families that do not use them.
struct ScenarioParams {
  MeshShape mesh = MeshShape::square(8);
  /// Benign background workload the attack overlays (§2.3).
  monitor::Benchmark benign{traffic::SyntheticPattern::UniformRandom};
  double fir = 0.8;
  std::int32_t num_attackers = 2;
  /// Cycle the attack switches on (benign-only before that).
  noc::Cycle attack_start = 3000;

  // transient: square-wave flooding with this full period and on-fraction.
  noc::Cycle burst_period = 2000;
  double burst_duty = 0.5;

  // victim-sweep: retarget to the next victim every sweep_period cycles.
  noc::Cycle sweep_period = 2000;
  std::int32_t sweep_victims = 3;

  // ramp: FIR climbs linearly from ramp_start_fir to fir over ramp_cycles.
  noc::Cycle ramp_cycles = 6000;
  double ramp_start_fir = 0.1;

  // --- evasive families (traffic/evasive.hpp behaviors) ---

  // pulse: detection-aware duty cycling at sub-window scale — on for
  // pulse_duty of every pulse_period cycles, offset by pulse_phase.
  noc::Cycle pulse_period = 250;
  double pulse_duty = 0.3;
  noc::Cycle pulse_phase = 0;

  // stealth-ramp: FIR creeps from ramp_start_fir up to stealth_fir (a
  // sub-saturation ceiling, never the full `fir`) over stealth_ramp_cycles.
  double stealth_fir = 0.3;
  noc::Cycle stealth_ramp_cycles = 8000;

  // colluding: `colluders` distinct sources share one victim, each at
  // colluding_aggregate_fir / colluders — only the aggregate saturates.
  std::int32_t colluders = 6;
  double colluding_aggregate_fir = 0.9;

  // mimicry: attack volume shaped like the benign SyntheticPattern (PARSEC
  // workloads are mimicked as UniformRandom) at this per-attacker FIR.
  double mimicry_fir = 0.35;
};

/// One live attack campaign on one Simulation.
class Scenario {
 public:
  explicit Scenario(std::string family) : family_(std::move(family)) {}
  virtual ~Scenario() = default;
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  [[nodiscard]] const std::string& family() const noexcept { return family_; }

  /// Install the benign generator and the attack generators; call exactly
  /// once before stepping the simulation.
  virtual void install(traffic::Simulation& sim, std::uint64_t seed) = 0;

  /// Advance the attack dynamics to cycle `now`; call once per cycle
  /// before Simulation::step().
  virtual void on_cycle(noc::Cycle now) = 0;

  /// Ground truth: attacker nodes whose flooding is switched on at `at`.
  [[nodiscard]] virtual std::vector<NodeId> active_attackers(noc::Cycle at) const = 0;

  [[nodiscard]] bool attack_active(noc::Cycle at) const { return !active_attackers(at).empty(); }

  /// Every attacker node the scenario ever uses (for reporting).
  [[nodiscard]] virtual std::vector<NodeId> all_attackers() const = 0;

 private:
  std::string family_;
};

/// String-keyed factory registry; the built-in families are registered on
/// first access, user families can be added (same name overwrites).
class ScenarioRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Scenario>(const ScenarioParams&, std::uint64_t seed)>;

  static ScenarioRegistry& instance();

  void add(std::string name, Factory factory);
  [[nodiscard]] bool contains(std::string_view name) const;
  /// nullptr when `name` is not registered.
  [[nodiscard]] std::unique_ptr<Scenario> make(std::string_view name, const ScenarioParams& params,
                                               std::uint64_t seed) const;
  /// Registered family names, ascending.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  ScenarioRegistry();
  std::map<std::string, Factory, std::less<>> factories_;
};

/// The original five built-in family names (the non-adaptive attackers).
[[nodiscard]] std::vector<std::string> builtin_scenario_families();

/// The four evasive (detection-aware) families: "pulse", "stealth-ramp",
/// "colluding", "mimicry" — each built on a traffic/evasive.hpp behavior.
[[nodiscard]] std::vector<std::string> evasive_scenario_families();

/// All nine registered families: builtin followed by evasive.
[[nodiscard]] std::vector<std::string> all_scenario_families();

}  // namespace dl2f::runtime
