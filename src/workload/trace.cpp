#include "workload/trace.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dl2f::workload {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("trace line " + std::to_string(line_no) + ": " + what);
}

/// Parse one signed integer field; rejects trailing junk inside the token.
std::int64_t parse_int(std::size_t line_no, const std::string& token, const char* field) {
  std::size_t used = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(token, &used);
  } catch (const std::exception&) {
    fail(line_no, std::string("expected integer for ") + field + ", got '" + token + "'");
  }
  if (used != token.size()) {
    fail(line_no, std::string("trailing characters in ") + field + " '" + token + "'");
  }
  return value;
}

bool is_blank_or_comment(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r");
  return first == std::string::npos || line[first] == '#';
}

std::string strip_cr(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace

std::vector<TraceRecord> parse_trace(std::istream& in, const MeshShape* shape) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  noc::Cycle prev_cycle = 0;

  while (std::getline(in, line)) {
    ++line_no;
    line = strip_cr(line);
    if (is_blank_or_comment(line)) continue;

    if (!saw_header) {
      if (line != kTraceHeaderV1) {
        fail(line_no, "expected header '" + std::string(kTraceHeaderV1) + "', got '" + line + "'");
      }
      saw_header = true;
      continue;
    }

    std::istringstream fields(line);
    std::string cycle_s, src_s, dst_s, kind_s, size_s, extra;
    if (!(fields >> cycle_s >> src_s >> dst_s >> kind_s >> size_s)) {
      fail(line_no, "expected 5 fields '<cycle> <src> <dst> <REQ|REPLY> <size>', got '" + line +
                        "'");
    }
    if (fields >> extra) fail(line_no, "unexpected trailing field '" + extra + "'");

    TraceRecord rec;
    rec.cycle = parse_int(line_no, cycle_s, "cycle");
    rec.src = static_cast<NodeId>(parse_int(line_no, src_s, "src"));
    rec.dst = static_cast<NodeId>(parse_int(line_no, dst_s, "dst"));
    if (kind_s == "REQ") {
      rec.kind = TraceKind::Request;
    } else if (kind_s == "REPLY") {
      rec.kind = TraceKind::Reply;
    } else {
      fail(line_no, "unknown kind '" + kind_s + "' (expected REQ or REPLY)");
    }
    rec.size_flits = static_cast<std::int32_t>(parse_int(line_no, size_s, "size"));

    if (rec.cycle < 0) fail(line_no, "negative cycle");
    if (rec.size_flits <= 0) fail(line_no, "size must be >= 1 flit");
    if (shape != nullptr) {
      if (!shape->valid(rec.src)) fail(line_no, "src " + src_s + " outside the mesh");
      if (!shape->valid(rec.dst)) fail(line_no, "dst " + dst_s + " outside the mesh");
    }
    if (rec.src == rec.dst) fail(line_no, "src == dst (self-addressed packet)");
    if (!records.empty() && rec.cycle < prev_cycle) {
      fail(line_no, "cycle " + cycle_s + " out of order (previous record at cycle " +
                        std::to_string(prev_cycle) + ")");
    }
    prev_cycle = rec.cycle;
    records.push_back(rec);
  }
  if (!saw_header) fail(line_no == 0 ? 1 : line_no, "empty trace: missing header");
  return records;
}

std::vector<TraceRecord> load_trace(const std::string& path, const MeshShape* shape) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("trace file '" + path + "': cannot open");
  try {
    return parse_trace(in, shape);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("trace file '" + path + "': " + e.what());
  }
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& records) {
  out << kTraceHeaderV1 << '\n';
  for (const auto& r : records) {
    out << r.cycle << ' ' << r.src << ' ' << r.dst << ' ' << to_string(r.kind) << ' '
        << r.size_flits << '\n';
  }
}

VectorTraceSource::VectorTraceSource(std::vector<TraceRecord> records, noc::Cycle loop_period)
    : records_(std::move(records)), loop_period_(loop_period) {
  assert(std::is_sorted(records_.begin(), records_.end(),
                        [](const auto& a, const auto& b) { return a.cycle < b.cycle; }));
  assert(loop_period_ == 0 || records_.empty() || loop_period_ > records_.back().cycle);
}

bool VectorTraceSource::next(TraceRecord& out) {
  if (records_.empty()) return false;
  if (pos_ == records_.size()) {
    if (loop_period_ <= 0) return false;
    pos_ = 0;
    ++pass_;
  }
  out = records_[pos_++];
  out.cycle += pass_ * loop_period_;
  return true;
}

bool GeneratedTraceSource::next(TraceRecord& out) {
  // Generated sources are infinite, but a cycle may yield no events; bound
  // the catch-up loop so a zero-rate config cannot spin forever.
  constexpr int kMaxEmptyCycles = 1 << 20;
  int empty = 0;
  while (buffer_.empty()) {
    scratch_.clear();
    generate_cycle(next_cycle_++, scratch_);
    buffer_.insert(buffer_.end(), scratch_.begin(), scratch_.end());
    if (scratch_.empty() && ++empty >= kMaxEmptyCycles) return false;
  }
  out = buffer_.front();
  buffer_.pop_front();
  return true;
}

BurstyTraceSource::BurstyTraceSource(const Config& cfg, std::uint64_t seed)
    : cfg_(cfg), clients_(client_nodes(cfg.mesh, cfg.servers)), rng_(seed) {
  assert(!cfg_.servers.empty());
  assert(cfg_.quiet_cycles + cfg_.burst_cycles > 0);
}

void BurstyTraceSource::generate_cycle(noc::Cycle cycle, std::vector<TraceRecord>& out) {
  const noc::Cycle period = cfg_.quiet_cycles + cfg_.burst_cycles;
  const bool burst = (cycle % period) >= cfg_.quiet_cycles;
  const double rate = burst ? cfg_.burst_rate : cfg_.quiet_rate;
  for (const NodeId client : clients_) {
    if (!rng_.bernoulli(rate)) continue;
    const auto pick = rng_.uniform_int(0, static_cast<std::int64_t>(cfg_.servers.size()) - 1);
    out.push_back(TraceRecord{cycle, client, cfg_.servers[static_cast<std::size_t>(pick)],
                              TraceKind::Request, cfg_.request_flits});
  }
}

MarkovOnOffTraceSource::MarkovOnOffTraceSource(const Config& cfg, std::uint64_t seed)
    : cfg_(cfg), clients_(client_nodes(cfg.mesh, cfg.servers)), rng_(seed) {
  assert(!cfg_.servers.empty());
  on_.assign(clients_.size(), 0);
}

void MarkovOnOffTraceSource::generate_cycle(noc::Cycle cycle, std::vector<TraceRecord>& out) {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (on_[i] == 0) {
      if (rng_.bernoulli(cfg_.p_on)) on_[i] = 1;
    } else if (rng_.bernoulli(cfg_.p_off)) {
      on_[i] = 0;
    }
    if (on_[i] == 0 || !rng_.bernoulli(cfg_.on_rate)) continue;
    const auto pick = rng_.uniform_int(0, static_cast<std::int64_t>(cfg_.servers.size()) - 1);
    out.push_back(TraceRecord{cycle, clients_[i], cfg_.servers[static_cast<std::size_t>(pick)],
                              TraceKind::Request, cfg_.request_flits});
  }
}

std::vector<NodeId> corner_servers(const MeshShape& mesh) {
  std::vector<NodeId> servers{mesh.id_of({0, 0}), mesh.id_of({mesh.cols() - 1, 0}),
                              mesh.id_of({0, mesh.rows() - 1}),
                              mesh.id_of({mesh.cols() - 1, mesh.rows() - 1})};
  std::sort(servers.begin(), servers.end());
  servers.erase(std::unique(servers.begin(), servers.end()), servers.end());
  return servers;
}

std::vector<NodeId> client_nodes(const MeshShape& mesh, const std::vector<NodeId>& servers) {
  std::vector<NodeId> clients;
  clients.reserve(static_cast<std::size_t>(mesh.node_count()));
  for (NodeId id = 0; id < mesh.node_count(); ++id) {
    if (std::find(servers.begin(), servers.end(), id) == servers.end()) clients.push_back(id);
  }
  return clients;
}

}  // namespace dl2f::workload
