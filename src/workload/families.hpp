// The three trace-driven benign workload families registered on the
// campaign's workload axis alongside the STP and PARSEC benchmarks:
//
//   trace-replay   closed-loop phase-structured bursts (BurstyTraceSource):
//                  clients issue requests to corner memory tiles under an
//                  outstanding window, bursts alternating with quiet phases.
//   openloop-burst open-loop Markov on/off trains (MarkovOnOffTraceSource):
//                  on-phase clients push on the pure arrival clock, so
//                  overload lands in the NI source queues instead of being
//                  absorbed by a window.
//   memhog         closed-loop constant high-rate memory stream with large
//                  replies — sustained near-saturation pressure on the
//                  corner memory tiles, the benign pattern most easily
//                  mistaken for a hotspot flood.
//
// Rates are tuned benign: aggregate reply demand stays at or below each
// memory tile's 1 flit/cycle NI bandwidth (memhog sits deliberately at the
// edge), so the detector's distinguishing signal remains flooding pressure.
#pragma once

#include <array>
#include <memory>
#include <string_view>

#include "common/geometry.hpp"
#include "workload/endpoint.hpp"

namespace dl2f::workload {

enum class TraceWorkloadKind : std::uint8_t { TraceReplay = 0, OpenLoopBurst = 1, MemHog = 2 };

inline constexpr std::array<TraceWorkloadKind, 3> kAllTraceWorkloads{
    TraceWorkloadKind::TraceReplay, TraceWorkloadKind::OpenLoopBurst, TraceWorkloadKind::MemHog};

[[nodiscard]] constexpr std::string_view to_string(TraceWorkloadKind k) noexcept {
  switch (k) {
    case TraceWorkloadKind::TraceReplay: return "trace-replay";
    case TraceWorkloadKind::OpenLoopBurst: return "openloop-burst";
    case TraceWorkloadKind::MemHog: return "memhog";
  }
  return "?";
}

/// Build the generator for one family: a RequestReplyWorkload over the
/// family's TraceSource, servers at the mesh corners, deterministically
/// seeded (same convention as every other benign generator).
[[nodiscard]] std::unique_ptr<RequestReplyWorkload> make_trace_workload(TraceWorkloadKind kind,
                                                                        const MeshShape& mesh,
                                                                        std::uint64_t seed);

}  // namespace dl2f::workload
