#include "workload/endpoint.hpp"

#include <algorithm>
#include <cassert>

#include "noc/stats.hpp"

namespace dl2f::workload {

RequestReplyWorkload::RequestReplyWorkload(const MeshShape& mesh,
                                           std::unique_ptr<TraceSource> source,
                                           std::vector<NodeId> servers,
                                           const RequestReplyConfig& cfg)
    : mesh_shape_(mesh), source_(std::move(source)), servers_(std::move(servers)), cfg_(cfg) {
  assert(source_ != nullptr);
  const auto n = static_cast<std::size_t>(mesh_shape_.node_count());
  is_server_.assign(n, 0);
  for (const NodeId s : servers_) {
    assert(mesh_shape_.valid(s));
    is_server_[static_cast<std::size_t>(s)] = 1;
  }
  pending_.resize(n);
  outstanding_.assign(n, 0);
  reply_queues_.resize(n);
  latency_hist_.assign(kLatencyBuckets, 0);
}

RequestReplyWorkload::~RequestReplyWorkload() {
  // Simulation destroys its generators before its mesh (mesh_ is declared
  // first), so deregistering here never touches a dead mesh.
  if (registered_mesh_ != nullptr && registered_mesh_->delivery_listener() == this) {
    registered_mesh_->set_delivery_listener(nullptr);
  }
}

void RequestReplyWorkload::tick(noc::Mesh& mesh) {
  if (registered_mesh_ != &mesh) {
    assert(mesh.delivery_listener() == nullptr);
    mesh.set_delivery_listener(this);
    registered_mesh_ = &mesh;
  }
  const noc::Cycle now = mesh.now();
  serve_replies(mesh, now);
  pull_due_records(now);
  issue_requests(mesh, now);
}

void RequestReplyWorkload::serve_replies(noc::Mesh& mesh, noc::Cycle now) {
  // Ascending node order keeps the injection sequence — and therefore the
  // whole simulation — deterministic. Requests normally land on servers_,
  // but a file trace may address any node, so every queue is swept.
  for (NodeId node = 0; node < mesh_shape_.node_count(); ++node) {
    auto& q = reply_queues_[static_cast<std::size_t>(node)];
    while (!q.empty() && q.front().ready <= now) {
      if (mesh.source_queue_length(node) >= cfg_.max_ni_queue) {
        // NI backed up: the reply stays queued (head-of-line within this
        // server only) and the wait is accounted as a stall.
        ++stats_.reply_stall_cycles;
        break;
      }
      const PendingReply r = q.front();
      q.pop_front();
      const noc::PacketId pid = mesh.inject(node, r.client, cfg_.reply_flits);
      if (pid < 0) {
        // Fenced server: the reply is lost and the client's outstanding
        // window never drains — dependents of a false fence visibly stall.
        ++stats_.replies_dropped;
        continue;
      }
      reply_meta_.emplace(pid, ReplyMeta{r.client, r.issue_cycle});
      ++stats_.replies_issued;
    }
  }
}

void RequestReplyWorkload::pull_due_records(noc::Cycle now) {
  while (!source_done_) {
    if (!have_peeked_) {
      if (!source_->next(peeked_)) {
        source_done_ = true;
        break;
      }
      have_peeked_ = true;
    }
    if (peeked_.cycle > now) break;
    pending_[static_cast<std::size_t>(peeked_.src)].push_back(peeked_);
    have_peeked_ = false;
  }
}

void RequestReplyWorkload::issue_requests(noc::Mesh& mesh, noc::Cycle now) {
  for (NodeId node = 0; node < mesh_shape_.node_count(); ++node) {
    auto& due = pending_[static_cast<std::size_t>(node)];
    while (!due.empty()) {
      const TraceRecord& rec = due.front();
      if (rec.kind == TraceKind::Reply) {
        // Replayed REPLY records are unpaired: injected on the arrival
        // clock with their recorded size, completion not tracked.
        const noc::PacketId pid = mesh.inject(rec.src, rec.dst, rec.size_flits);
        if (pid < 0) {
          ++stats_.replies_dropped;
        } else {
          ++stats_.replies_issued;
        }
        due.pop_front();
        continue;
      }
      if (!cfg_.open_loop) {
        // Closed loop: the outstanding window and the NI queue both gate
        // issue; a blocked head blocks only this client's later records.
        if (outstanding_[static_cast<std::size_t>(node)] >= cfg_.window ||
            mesh.source_queue_length(node) >= cfg_.max_ni_queue) {
          ++stats_.issue_stall_cycles;
          break;
        }
      }
      const noc::PacketId pid = mesh.inject(rec.src, rec.dst, rec.size_flits);
      if (pid < 0) {
        ++stats_.requests_dropped;
        due.pop_front();
        continue;
      }
      request_meta_.emplace(pid, RequestMeta{now});
      ++stats_.requests_issued;
      ++outstanding_[static_cast<std::size_t>(node)];
      due.pop_front();
    }
  }
}

void RequestReplyWorkload::on_packet_delivered(const noc::Flit& tail, noc::Cycle now) {
  if (const auto it = request_meta_.find(tail.packet); it != request_meta_.end()) {
    ++stats_.requests_delivered;
    reply_queues_[static_cast<std::size_t>(tail.dst)].push_back(
        PendingReply{now + cfg_.service_latency, tail.src, it->second.issue_cycle});
    request_meta_.erase(it);
    return;
  }
  if (const auto it = reply_meta_.find(tail.packet); it != reply_meta_.end()) {
    const noc::Cycle latency = now - it->second.issue_cycle;
    ++stats_.replies_completed;
    stats_.reply_latency_sum += static_cast<double>(latency);
    stats_.reply_latency_max = std::max(stats_.reply_latency_max, latency);
    const auto bucket =
        std::min(static_cast<std::size_t>(latency), latency_hist_.size() - 1);
    ++latency_hist_[bucket];
    auto& out = outstanding_[static_cast<std::size_t>(it->second.client)];
    assert(out > 0);
    --out;
    reply_meta_.erase(it);
    return;
  }
  // Not ours: synthetic benign traffic or a flooding overlay sharing the
  // mesh — the listener only reacts to packets it issued.
}

double RequestReplyWorkload::reply_latency_percentile(double q) const noexcept {
  return noc::histogram_percentile(latency_hist_, q,
                                   static_cast<double>(stats_.reply_latency_max));
}

}  // namespace dl2f::workload
