// Request/reply endpoint pairs driven by a TraceSource.
//
// One RequestReplyWorkload models BOTH sides of the netsim cpu.cpp /
// memory.cpp split: the CPU-side endpoints issue REQ packets from the
// trace (closed-loop against a per-source outstanding-request window, or
// open-loop on the pure arrival clock), and the memory-side endpoints turn
// each delivered request into a REPLY packet after a fixed service
// latency. It is a traffic::TrafficGenerator (ticked before the mesh
// advances) and a noc::PacketDeliveryListener (told about every tail-flit
// ejection), so request->reply causality flows through real delivered
// packets — not through a schedule computed outside the network.
//
// Backpressure is honored on both sides: a closed-loop client stops
// issuing when its outstanding window is full OR its NI source queue is
// deep, and a memory endpoint defers ready replies while its own NI queue
// is backed up. Because replies route through the ordinary injection path,
// quarantining an innocent client (false fence) drops its requests at the
// NI, its outstanding window never drains, and every dependent stalls —
// the visible cost a serving SLO must price in.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "noc/mesh.hpp"
#include "traffic/generator.hpp"
#include "workload/trace.hpp"

namespace dl2f::workload {

struct RequestReplyConfig {
  bool open_loop = false;          ///< issue on the arrival clock, no window
  std::int32_t window = 8;         ///< max outstanding requests per client (closed-loop)
  std::size_t max_ni_queue = 4;    ///< NI backpressure threshold (queued packets at the source)
  noc::Cycle service_latency = 24; ///< delivered request -> reply injection delay
  std::int32_t reply_flits = 5;    ///< reply packet size (cache-line-like payload)
};

/// Aggregate counters; the serving bench snapshots this per window and
/// diffs. All integers except the latency sum, so snapshots are exact.
struct WorkloadStats {
  std::int64_t requests_issued = 0;     ///< REQ packets handed to an NI
  std::int64_t requests_dropped = 0;    ///< REQ packets dropped at a fenced NI
  std::int64_t requests_delivered = 0;  ///< REQ tails ejected at a server
  std::int64_t replies_issued = 0;      ///< REPLY packets handed to an NI
  std::int64_t replies_dropped = 0;     ///< REPLY packets dropped at a fenced NI
  std::int64_t replies_completed = 0;   ///< REPLY tails ejected back at the client
  std::int64_t issue_stall_cycles = 0;  ///< client-cycles blocked by window/backpressure
  std::int64_t reply_stall_cycles = 0;  ///< server-cycles a ready reply waited on backpressure
  double reply_latency_sum = 0.0;       ///< sum over completed round trips (cycles)
  noc::Cycle reply_latency_max = 0;
};

class RequestReplyWorkload final : public traffic::TrafficGenerator,
                                   public noc::PacketDeliveryListener {
 public:
  RequestReplyWorkload(const MeshShape& mesh, std::unique_ptr<TraceSource> source,
                       std::vector<NodeId> servers, const RequestReplyConfig& cfg);
  ~RequestReplyWorkload() override;

  RequestReplyWorkload(const RequestReplyWorkload&) = delete;
  RequestReplyWorkload& operator=(const RequestReplyWorkload&) = delete;

  void tick(noc::Mesh& mesh) override;
  void on_packet_delivered(const noc::Flit& tail, noc::Cycle now) override;

  [[nodiscard]] const WorkloadStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const RequestReplyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<NodeId>& servers() const noexcept { return servers_; }

  /// Requests in flight (issued, reply not yet delivered) for one client.
  [[nodiscard]] std::int32_t outstanding(NodeId client) const {
    return outstanding_[static_cast<std::size_t>(client)];
  }
  /// Trace records due but not yet issued at one client.
  [[nodiscard]] std::size_t pending_requests(NodeId client) const {
    return pending_[static_cast<std::size_t>(client)].size();
  }

  /// Round-trip (request issue -> reply delivery) latency percentile over
  /// all completed replies, nearest-rank, exact overflow maximum.
  [[nodiscard]] double reply_latency_percentile(double q) const noexcept;
  [[nodiscard]] double reply_latency_mean() const noexcept {
    return stats_.replies_completed > 0
               ? stats_.reply_latency_sum / static_cast<double>(stats_.replies_completed)
               : 0.0;
  }
  /// 1-cycle-bucket round-trip latency histogram (overflow in last bucket);
  /// the serving bench diffs snapshots of this for per-phase percentiles.
  [[nodiscard]] const std::vector<std::int64_t>& reply_latency_histogram() const noexcept {
    return latency_hist_;
  }

 private:
  /// A delivered request waiting out its service latency at a server.
  struct PendingReply {
    noc::Cycle ready;        ///< earliest injection cycle
    NodeId client;           ///< where the reply goes
    noc::Cycle issue_cycle;  ///< when the client issued the request
  };
  /// In-flight metadata keyed by PacketId (lookup/erase only — never
  /// iterated, so the unordered container does not threaten determinism).
  struct RequestMeta {
    noc::Cycle issue_cycle;
  };
  struct ReplyMeta {
    NodeId client;
    noc::Cycle issue_cycle;
  };

  void serve_replies(noc::Mesh& mesh, noc::Cycle now);
  void issue_requests(noc::Mesh& mesh, noc::Cycle now);
  void pull_due_records(noc::Cycle now);

  MeshShape mesh_shape_;
  std::unique_ptr<TraceSource> source_;
  std::vector<NodeId> servers_;
  std::vector<char> is_server_;
  RequestReplyConfig cfg_;
  WorkloadStats stats_;

  /// Due-but-unissued records per client (head-of-line blocking is per
  /// client, never across clients).
  std::vector<std::deque<TraceRecord>> pending_;
  std::vector<std::int32_t> outstanding_;
  std::vector<std::deque<PendingReply>> reply_queues_;  ///< per server, FIFO by ready cycle

  std::unordered_map<noc::PacketId, RequestMeta> request_meta_;
  std::unordered_map<noc::PacketId, ReplyMeta> reply_meta_;

  static constexpr std::size_t kLatencyBuckets = 4096;
  std::vector<std::int64_t> latency_hist_;

  TraceRecord peeked_;
  bool have_peeked_ = false;
  bool source_done_ = false;
  noc::Mesh* registered_mesh_ = nullptr;
};

}  // namespace dl2f::workload
