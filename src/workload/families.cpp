#include "workload/families.hpp"

#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace dl2f::workload {

std::unique_ptr<RequestReplyWorkload> make_trace_workload(TraceWorkloadKind kind,
                                                          const MeshShape& mesh,
                                                          std::uint64_t seed) {
  const auto servers = corner_servers(mesh);
  std::unique_ptr<TraceSource> source;
  RequestReplyConfig cfg;
  switch (kind) {
    case TraceWorkloadKind::TraceReplay: {
      BurstyTraceSource::Config src;
      src.mesh = mesh;
      src.servers = servers;
      src.quiet_cycles = 600;
      src.burst_cycles = 200;
      src.quiet_rate = 0.004;
      src.burst_rate = 0.020;
      source = std::make_unique<BurstyTraceSource>(src, mix64(seed ^ 0x7261636572ULL));
      cfg.open_loop = false;
      cfg.window = 8;
      cfg.service_latency = 20;
      cfg.reply_flits = 5;
      break;
    }
    case TraceWorkloadKind::OpenLoopBurst: {
      MarkovOnOffTraceSource::Config src;
      src.mesh = mesh;
      src.servers = servers;
      src.p_on = 0.002;
      src.p_off = 0.010;
      src.on_rate = 0.080;
      source = std::make_unique<MarkovOnOffTraceSource>(src, mix64(seed ^ 0x6f70656eULL));
      cfg.open_loop = true;
      cfg.service_latency = 16;
      cfg.reply_flits = 3;
      break;
    }
    case TraceWorkloadKind::MemHog: {
      BurstyTraceSource::Config src;
      src.mesh = mesh;
      src.servers = servers;
      // quiet == burst: constant-rate memory stream near the corner tiles'
      // reply bandwidth (60 clients x 0.015 req/cycle x 4 reply flits
      // / 4 servers ~ 0.9 flits/cycle/server on an 8x8 mesh).
      src.quiet_cycles = 400;
      src.burst_cycles = 400;
      src.quiet_rate = 0.015;
      src.burst_rate = 0.015;
      source = std::make_unique<BurstyTraceSource>(src, mix64(seed ^ 0x6d656d686f67ULL));
      cfg.open_loop = false;
      cfg.window = 12;
      cfg.service_latency = 24;
      cfg.reply_flits = 4;
      break;
    }
  }
  return std::make_unique<RequestReplyWorkload>(mesh, std::move(source), servers, cfg);
}

}  // namespace dl2f::workload
