// Versioned text trace format + deterministic trace sources.
//
// A trace is a time-ordered list of request/reply events driving the
// request-reply endpoints in src/workload/endpoint.hpp (the netsim
// cpu.cpp/memory.cpp idiom: CPU tiles issue REQ packets toward memory
// tiles, which answer with REPLY packets after a service latency).
//
// Text format `dl2f-trace v1` (see traces/README note in the repo README):
//
//     dl2f-trace v1
//     # comment lines and blank lines are ignored
//     <cycle> <src> <dst> <REQ|REPLY> <size_flits>
//
// Records must be sorted by nondecreasing cycle; every malformed line is
// rejected with a line-numbered std::invalid_argument so a bad trace file
// fails loudly at load time, never silently mid-campaign.
//
// Sources come in two flavors behind one pull interface (TraceSource):
// file/vector-backed replay (optionally looped), and generator-backed
// synthesis (phase-structured bursts, per-node Markov on/off) seeded by
// the campaign convention so a synthesized trace is as reproducible as a
// committed file.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "noc/flit.hpp"

namespace dl2f::workload {

enum class TraceKind : std::uint8_t { Request = 0, Reply = 1 };

[[nodiscard]] constexpr std::string_view to_string(TraceKind k) noexcept {
  return k == TraceKind::Request ? "REQ" : "REPLY";
}

/// One trace event: at `cycle`, node `src` presents a `kind` packet of
/// `size_flits` flits destined for `dst`.
struct TraceRecord {
  noc::Cycle cycle = 0;
  NodeId src = 0;
  NodeId dst = 0;
  TraceKind kind = TraceKind::Request;
  std::int32_t size_flits = 1;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Header line every v1 trace file starts with.
inline constexpr std::string_view kTraceHeaderV1 = "dl2f-trace v1";

/// Parse a v1 trace stream. Throws std::invalid_argument with the 1-based
/// line number on a missing/wrong header, short/overlong lines, non-numeric
/// fields, unknown kinds, negative/zero sizes, out-of-mesh node ids (when
/// `shape` is given) and cycle-order violations.
[[nodiscard]] std::vector<TraceRecord> parse_trace(std::istream& in,
                                                   const MeshShape* shape = nullptr);

/// Load a trace file from disk (wraps parse_trace; the thrown message is
/// prefixed with the path).
[[nodiscard]] std::vector<TraceRecord> load_trace(const std::string& path,
                                                  const MeshShape* shape = nullptr);

/// Write records back out in v1 format (round-trips through parse_trace).
void write_trace(std::ostream& out, const std::vector<TraceRecord>& records);

/// Pull interface every endpoint consumes: `next` fills `out` with the next
/// record in nondecreasing cycle order and returns false when exhausted
/// (generator-backed sources never exhaust).
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual bool next(TraceRecord& out) = 0;
};

/// Replays a parsed record vector; with `loop_period > 0` the sequence
/// repeats forever, each pass shifted by pass * loop_period cycles
/// (loop_period must exceed the last record's cycle to keep order).
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<TraceRecord> records, noc::Cycle loop_period = 0);

  bool next(TraceRecord& out) override;

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
  noc::Cycle loop_period_;
  std::int64_t pass_ = 0;
};

/// Shared machinery for synthesized sources: generates records one cycle at
/// a time into a small buffer, so next() stays ahead of the consumer by at
/// most one cycle's worth of events regardless of how far the simulation
/// runs. Subclasses emit records for cycle `c` in ascending src order,
/// keeping the stream deterministic.
class GeneratedTraceSource : public TraceSource {
 public:
  bool next(TraceRecord& out) final;

 protected:
  /// Append this cycle's records (ascending src) to `out`.
  virtual void generate_cycle(noc::Cycle cycle, std::vector<TraceRecord>& out) = 0;

 private:
  std::deque<TraceRecord> buffer_;
  std::vector<TraceRecord> scratch_;
  noc::Cycle next_cycle_ = 0;
};

/// Phase-structured bursty arrivals: client nodes alternate between a quiet
/// phase and a burst phase, issuing Bernoulli REQ records toward a
/// rng-chosen server each cycle. quiet_rate == burst_rate degenerates to a
/// constant-rate memory stream (the "memhog" shape).
class BurstyTraceSource final : public GeneratedTraceSource {
 public:
  struct Config {
    MeshShape mesh = MeshShape::square(8);
    std::vector<NodeId> servers;     ///< request destinations (memory tiles)
    noc::Cycle quiet_cycles = 600;   ///< length of the quiet phase
    noc::Cycle burst_cycles = 200;   ///< length of the burst phase
    double quiet_rate = 0.004;       ///< per-client per-cycle REQ probability
    double burst_rate = 0.02;
    std::int32_t request_flits = 1;
  };

  BurstyTraceSource(const Config& cfg, std::uint64_t seed);

 protected:
  void generate_cycle(noc::Cycle cycle, std::vector<TraceRecord>& out) override;

 private:
  Config cfg_;
  std::vector<NodeId> clients_;  ///< all non-server nodes, ascending
  Rng rng_;
};

/// Per-node two-state Markov on/off process: each client flips off->on with
/// p_on and on->off with p_off per cycle, and while on issues Bernoulli
/// REQ records at on_rate — long silences punctuated by dense request
/// trains, the canonical open-loop overload shape.
class MarkovOnOffTraceSource final : public GeneratedTraceSource {
 public:
  struct Config {
    MeshShape mesh = MeshShape::square(8);
    std::vector<NodeId> servers;
    double p_on = 0.002;   ///< off -> on transition probability per cycle
    double p_off = 0.010;  ///< on -> off transition probability per cycle
    double on_rate = 0.08;
    std::int32_t request_flits = 1;
  };

  MarkovOnOffTraceSource(const Config& cfg, std::uint64_t seed);

 protected:
  void generate_cycle(noc::Cycle cycle, std::vector<TraceRecord>& out) override;

 private:
  Config cfg_;
  std::vector<NodeId> clients_;
  std::vector<char> on_;  ///< per-client on/off state, indexed like clients_
  Rng rng_;
};

/// The corner nodes of the mesh, ascending — the conventional memory-tile
/// placement shared with monitor::ParsecTraffic's hotspot corners.
[[nodiscard]] std::vector<NodeId> corner_servers(const MeshShape& mesh);

/// All nodes not in `servers`, ascending.
[[nodiscard]] std::vector<NodeId> client_nodes(const MeshShape& mesh,
                                               const std::vector<NodeId>& servers);

}  // namespace dl2f::workload
