#include "monitor/dataset.hpp"

#include <algorithm>

#include "traffic/simulation.hpp"

namespace dl2f::monitor {

std::size_t Dataset::attack_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(samples.begin(), samples.end(), [](const auto& s) { return s.under_attack; }));
}

std::size_t Dataset::benign_count() const noexcept { return samples.size() - attack_count(); }

DirectionalFrames ground_truth_masks(const FrameGeometry& geom,
                                     const traffic::AttackScenario& scenario) {
  DirectionalFrames masks;
  for (Direction d : kMeshDirections) frame_of(masks, d) = geom.make_frame();
  if (scenario.attackers.empty()) return masks;
  for (const auto& [node, dir] : scenario.ground_truth_ports(geom.mesh())) {
    const auto pos = geom.to_frame(dir, geom.mesh().coord_of(node));
    if (pos) frame_of(masks, dir).at(pos->row, pos->col) = 1.0F;
  }
  return masks;
}

namespace {

void collect_samples(traffic::Simulation& sim, const FeatureSampler& sampler,
                     std::int64_t period, std::int32_t count, bool under_attack,
                     const traffic::AttackScenario& scenario, Dataset& out) {
  const FrameGeometry& geom = sampler.geometry();
  for (std::int32_t k = 0; k < count; ++k) {
    sim.run(period);
    FrameSample s;
    s.vco = sampler.sample_vco(sim.mesh(), /*reset=*/true);
    s.boc = sampler.sample_boc(sim.mesh(), /*reset=*/true);
    s.ni_load = sampler.sample_ni_load(sim.mesh(), /*reset=*/true);
    s.window_cycles = period;
    s.under_attack = under_attack;
    if (under_attack) {
      s.scenario = scenario;
      s.port_truth = ground_truth_masks(geom, scenario);
      s.victim_truth = scenario.ground_truth_victims(geom.mesh());
    } else {
      for (Direction d : kMeshDirections) frame_of(s.port_truth, d) = geom.make_frame();
    }
    out.samples.push_back(std::move(s));
  }
}

}  // namespace

Dataset generate_dataset(const DatasetConfig& cfg, const std::vector<Benchmark>& benchmarks) {
  Dataset out;
  out.mesh = cfg.mesh;
  const FeatureSampler sampler(cfg.mesh);
  Rng master(cfg.seed);

  for (const auto& bench : benchmarks) {
    // Paper §5: scenarios mix single- and double-attacker cases
    // ("1 attacker + 2 attackers together" in Tables 1-3).
    const std::int32_t n1 = (cfg.scenarios_per_benchmark + 1) / 2;
    const std::int32_t n2 = cfg.scenarios_per_benchmark - n1;
    auto scenarios = traffic::make_scenarios(cfg.mesh, n1, 1, cfg.fir, master.engine()());
    auto two = traffic::make_scenarios(cfg.mesh, n2, 2, cfg.fir, master.engine()());
    scenarios.insert(scenarios.end(), two.begin(), two.end());

    for (const auto& scenario : scenarios) {
      noc::MeshConfig mesh_cfg;
      mesh_cfg.shape = cfg.mesh;
      mesh_cfg.router = cfg.router;
      traffic::Simulation sim(mesh_cfg);
      sim.add_generator(bench.make_generator(cfg.mesh, master.engine()()));
      auto* attack_ptr =
          sim.emplace_generator<traffic::FloodingAttack>(scenario, master.engine()());
      attack_ptr->set_active(false);

      const auto period = bench.sample_period();
      sim.run(cfg.warmup_cycles);
      sim.mesh().reset_telemetry();

      collect_samples(sim, sampler, period, cfg.benign_samples_per_run, false, {}, out);

      attack_ptr->set_active(true);
      sim.run(cfg.attack_ramp_cycles);
      sim.mesh().reset_telemetry();

      collect_samples(sim, sampler, period, cfg.attack_samples_per_run, true, scenario, out);
    }
  }
  return out;
}

DatasetSplit split_dataset(const Dataset& data, double test_fraction, std::uint64_t seed) {
  DatasetSplit split;
  split.train.mesh = split.test.mesh = data.mesh;

  std::vector<std::size_t> attack_idx;
  std::vector<std::size_t> benign_idx;
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    (data.samples[i].under_attack ? attack_idx : benign_idx).push_back(i);
  }

  Rng rng(seed);
  const auto assign = [&](std::vector<std::size_t>& idx) {
    std::shuffle(idx.begin(), idx.end(), rng.engine());
    const auto n_test = static_cast<std::size_t>(static_cast<double>(idx.size()) * test_fraction);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      auto& dst = i < n_test ? split.test : split.train;
      dst.samples.push_back(data.samples[idx[i]]);
    }
  };
  assign(attack_idx);
  assign(benign_idx);
  return split;
}

}  // namespace dl2f::monitor
