// Unified handle over the evaluation benchmarks: the paper's nine
// (6 STP + 3 PARSEC) plus the three trace-driven request/reply families
// from src/workload/ ("trace-replay", "openloop-burst", "memhog"), with
// the per-benchmark defaults used across tables, benches and tests.
#pragma once

#include <memory>
#include <string>
#include <variant>

#include "traffic/generator.hpp"
#include "traffic/parsec.hpp"
#include "traffic/patterns.hpp"
#include "workload/families.hpp"

namespace dl2f::monitor {

struct Benchmark {
  std::variant<traffic::SyntheticPattern, traffic::ParsecWorkload, workload::TraceWorkloadKind>
      kind;

  [[nodiscard]] bool is_parsec() const noexcept {
    return std::holds_alternative<traffic::ParsecWorkload>(kind);
  }
  [[nodiscard]] bool is_trace() const noexcept {
    return std::holds_alternative<workload::TraceWorkloadKind>(kind);
  }
  [[nodiscard]] std::string name() const;

  /// Benign per-node packet-injection rate for STP benchmarks. Rates sit
  /// below each pattern's saturation point so benign runs stay stable and
  /// flooding pressure remains the distinguishing signal; adversarial
  /// patterns (tornado, bit complement) saturate earlier and get lower
  /// rates. Unused for PARSEC (the phase machine owns its rates) and for
  /// trace workloads (the TraceSource owns its arrival process).
  [[nodiscard]] double stp_injection_rate() const noexcept;

  /// Feature sampling period in cycles (paper: 1 000 for STP, 100 000 for
  /// PARSEC at 2 GHz; our PARSEC period is scaled to keep bench runtimes
  /// laptop-friendly while still spanning several phase-machine periods).
  /// Trace workloads use the STP period: their bursts are shorter than
  /// PARSEC phases.
  [[nodiscard]] std::int64_t sample_period() const noexcept;

  /// Instantiate the benign traffic generator for this benchmark.
  [[nodiscard]] std::unique_ptr<traffic::TrafficGenerator> make_generator(
      const MeshShape& shape, std::uint64_t seed) const;
};

/// The paper's full benchmark list, STP first, then PARSEC. Trace
/// workloads are NOT included (the paper's tables are 9 columns wide);
/// callers that sweep the widened axis append trace_benchmarks().
[[nodiscard]] std::vector<Benchmark> all_benchmarks();
[[nodiscard]] std::vector<Benchmark> stp_benchmarks();
[[nodiscard]] std::vector<Benchmark> parsec_benchmarks();
/// The trace-driven request/reply families from src/workload/.
[[nodiscard]] std::vector<Benchmark> trace_benchmarks();

}  // namespace dl2f::monitor
