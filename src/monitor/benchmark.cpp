#include "monitor/benchmark.hpp"

namespace dl2f::monitor {

std::string Benchmark::name() const {
  if (const auto* stp = std::get_if<traffic::SyntheticPattern>(&kind)) {
    return std::string(traffic::to_string(*stp));
  }
  if (const auto* trace = std::get_if<workload::TraceWorkloadKind>(&kind)) {
    return std::string(workload::to_string(*trace));
  }
  return std::string(traffic::to_string(std::get<traffic::ParsecWorkload>(kind)));
}

double Benchmark::stp_injection_rate() const noexcept {
  if (const auto* stp = std::get_if<traffic::SyntheticPattern>(&kind)) {
    switch (*stp) {
      case traffic::SyntheticPattern::UniformRandom: return 0.020;
      case traffic::SyntheticPattern::Tornado: return 0.010;
      case traffic::SyntheticPattern::Shuffle: return 0.015;
      case traffic::SyntheticPattern::Neighbor: return 0.030;
      case traffic::SyntheticPattern::BitRotation: return 0.015;
      case traffic::SyntheticPattern::BitComplement: return 0.010;
    }
  }
  return 0.0;
}

std::int64_t Benchmark::sample_period() const noexcept { return is_parsec() ? 2000 : 1000; }

std::unique_ptr<traffic::TrafficGenerator> Benchmark::make_generator(const MeshShape& shape,
                                                                     std::uint64_t seed) const {
  if (const auto* stp = std::get_if<traffic::SyntheticPattern>(&kind)) {
    return std::make_unique<traffic::SyntheticTraffic>(*stp, stp_injection_rate(), seed);
  }
  if (const auto* trace = std::get_if<workload::TraceWorkloadKind>(&kind)) {
    return workload::make_trace_workload(*trace, shape, seed);
  }
  return std::make_unique<traffic::ParsecTraffic>(std::get<traffic::ParsecWorkload>(kind), shape,
                                                  seed);
}

std::vector<Benchmark> stp_benchmarks() {
  std::vector<Benchmark> out;
  for (auto p : traffic::kAllSyntheticPatterns) out.push_back(Benchmark{p});
  return out;
}

std::vector<Benchmark> parsec_benchmarks() {
  std::vector<Benchmark> out;
  for (auto w : traffic::kAllParsecWorkloads) out.push_back(Benchmark{w});
  return out;
}

std::vector<Benchmark> trace_benchmarks() {
  std::vector<Benchmark> out;
  for (auto k : workload::kAllTraceWorkloads) out.push_back(Benchmark{k});
  return out;
}

std::vector<Benchmark> all_benchmarks() {
  auto out = stp_benchmarks();
  for (auto& b : parsec_benchmarks()) out.push_back(b);
  return out;
}

}  // namespace dl2f::monitor
