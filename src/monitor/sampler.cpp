#include "monitor/sampler.hpp"

namespace dl2f::monitor {

DirectionalFrames FeatureSampler::sample_vco(const noc::Mesh& mesh) const {
  DirectionalFrames frames;
  for (Direction d : kMeshDirections) frame_of(frames, d) = geom_.make_frame();

  const auto& shape = mesh.shape();
  for (NodeId id = 0; id < shape.node_count(); ++id) {
    const Coord c = shape.coord_of(id);
    const auto& router = mesh.router(id);
    for (Direction d : kMeshDirections) {
      const auto pos = geom_.to_frame(d, c);
      if (!pos) continue;
      frame_of(frames, d).at(pos->row, pos->col) =
          static_cast<float>(router.input(d).avg_vc_occupancy(mesh.now()));
    }
  }
  return frames;
}

DirectionalFrames FeatureSampler::sample_vco(noc::Mesh& mesh, bool reset) const {
  DirectionalFrames frames = sample_vco(static_cast<const noc::Mesh&>(mesh));
  if (reset) mesh.reset_occupancy_windows();
  return frames;
}

DirectionalFrames FeatureSampler::sample_boc(noc::Mesh& mesh, bool reset) const {
  DirectionalFrames frames;
  for (Direction d : kMeshDirections) frame_of(frames, d) = geom_.make_frame();

  const auto& shape = mesh.shape();
  for (NodeId id = 0; id < shape.node_count(); ++id) {
    const Coord c = shape.coord_of(id);
    const auto& router = mesh.router(id);
    for (Direction d : kMeshDirections) {
      const auto pos = geom_.to_frame(d, c);
      if (!pos) continue;
      frame_of(frames, d).at(pos->row, pos->col) =
          static_cast<float>(router.input(d).telemetry.operations());
    }
  }
  if (reset) mesh.reset_boc_counters();
  return frames;
}

std::vector<float> FeatureSampler::sample_ni_load(noc::Mesh& mesh, bool reset) const {
  const auto n = static_cast<std::size_t>(mesh.shape().node_count());
  std::vector<float> load(n, 0.0F);
  for (std::size_t id = 0; id < n; ++id) {
    load[id] = static_cast<float>(mesh.ni_injected_flits(static_cast<NodeId>(id)));
  }
  if (reset) mesh.reset_ni_injection();
  return load;
}

}  // namespace dl2f::monitor
