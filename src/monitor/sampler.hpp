// The global performance monitor: samples VCO and BOC feature frames from
// every router input port (§5: "We designed a global performance monitor
// to collect the dataset").
#pragma once

#include <array>
#include <vector>

#include "common/frame.hpp"
#include "monitor/frame_geometry.hpp"
#include "noc/mesh.hpp"

namespace dl2f::monitor {

/// One frame per mesh direction, indexed by Direction (E, N, W, S).
using DirectionalFrames = std::array<Frame, kNumMeshDirections>;

[[nodiscard]] inline Frame& frame_of(DirectionalFrames& f, Direction d) {
  return f[static_cast<std::size_t>(d)];
}
[[nodiscard]] inline const Frame& frame_of(const DirectionalFrames& f, Direction d) {
  return f[static_cast<std::size_t>(d)];
}

class FeatureSampler {
 public:
  explicit FeatureSampler(const MeshShape& mesh) : geom_(mesh) {}

  [[nodiscard]] const FrameGeometry& geometry() const noexcept { return geom_; }

  /// Virtual-channel occupancy per input port, in [0,1], averaged over the
  /// current monitoring window (reset together with the BOC counters).
  /// VCO is float-natured and is used WITHOUT normalization (§4). The
  /// paper samples instantaneous occupancy from Garnet's 4-5 stage router
  /// pipeline; our single-cycle router drains VCs faster, so the window
  /// average restores the same congestion semantics (DESIGN.md §2).
  [[nodiscard]] DirectionalFrames sample_vco(const noc::Mesh& mesh) const;

  /// As above, but when `reset` is true a new occupancy-averaging window
  /// starts after the read. Each feature owns its window lifecycle: BOC
  /// resets only the operation counters, VCO resets only the occupancy
  /// windows, so a monitoring round may sample the two features in either
  /// order (historically sample_boc reset both, so sampling BOC first
  /// silently collapsed the VCO average to its instantaneous fallback).
  [[nodiscard]] DirectionalFrames sample_vco(noc::Mesh& mesh, bool reset) const;

  /// Accumulated buffer operation counts (reads + writes) per input port
  /// since the last counter reset. Integer-natured; callers normalize
  /// before feeding the segmentation model (§4).
  /// When `reset` is true the counters restart for the next window (the
  /// VCO occupancy windows are left untouched — see sample_vco).
  [[nodiscard]] DirectionalFrames sample_boc(noc::Mesh& mesh, bool reset = true) const;

  /// Per-node network-interface injection demand accumulated since the
  /// last NI-counter reset, in flits, indexed by NodeId. The temporal
  /// detector's cross-source correlation features are built from this: it
  /// is the only monitor signal attributable to a *source* rather than to
  /// in-network pressure, which is what makes colluding low-rate floods
  /// visible. When `reset` is true the injection window restarts after the
  /// read (BOC / VCO windows untouched — each feature owns its lifecycle).
  [[nodiscard]] std::vector<float> sample_ni_load(noc::Mesh& mesh, bool reset = true) const;

 private:
  FrameGeometry geom_;
};

}  // namespace dl2f::monitor
