// Mapping between router coordinates and directional feature-frame pixels.
//
// Routers on a mesh edge lack the input port facing outward, so for every
// direction exactly R x (R-1) input ports exist on an R x R mesh — the
// paper's "the feature frame always forms an R x (R-1) matrix". East/West
// frames drop one column; North/South frames drop one row and are stored
// transposed so that all four directional frames share the same canonical
// R x (R-1) shape expected by the CNN input layer.
#pragma once

#include <optional>
#include <utility>

#include "common/frame.hpp"
#include "common/geometry.hpp"

namespace dl2f::monitor {

struct FramePos {
  std::int32_t row = 0;
  std::int32_t col = 0;
  friend constexpr bool operator==(const FramePos&, const FramePos&) = default;
};

class FrameGeometry {
 public:
  explicit FrameGeometry(const MeshShape& mesh) : mesh_(mesh) {}

  [[nodiscard]] const MeshShape& mesh() const noexcept { return mesh_; }

  [[nodiscard]] std::int32_t frame_rows() const noexcept { return mesh_.rows(); }
  [[nodiscard]] std::int32_t frame_cols() const noexcept { return mesh_.cols() - 1; }

  /// Pixel of router `c`'s input port facing `d`, or nullopt when the
  /// router has no such port (mesh edge).
  [[nodiscard]] std::optional<FramePos> to_frame(Direction d, Coord c) const noexcept {
    if (!mesh_.has_port(c, d) || d == Direction::Local) return std::nullopt;
    switch (d) {
      case Direction::East: return FramePos{c.y, c.x};       // x <= cols-2
      case Direction::West: return FramePos{c.y, c.x - 1};   // x >= 1
      case Direction::North: return FramePos{c.x, c.y};      // transposed, y <= rows-2
      case Direction::South: return FramePos{c.x, c.y - 1};  // transposed, y >= 1
      case Direction::Local: break;
    }
    return std::nullopt;
  }

  /// Inverse of to_frame: which router owns pixel (row, col) of frame `d`.
  [[nodiscard]] Coord to_coord(Direction d, FramePos p) const noexcept {
    switch (d) {
      case Direction::East: return Coord{p.col, p.row};
      case Direction::West: return Coord{p.col + 1, p.row};
      case Direction::North: return Coord{p.row, p.col};
      case Direction::South: return Coord{p.row, p.col + 1};
      case Direction::Local: break;
    }
    return Coord{0, 0};
  }

  /// An empty (all-zero) frame of the canonical directional shape.
  [[nodiscard]] Frame make_frame() const { return Frame(frame_rows(), frame_cols()); }

 private:
  MeshShape mesh_;
};

}  // namespace dl2f::monitor
