// Sliding window-sequence assembly for the temporal detection head.
//
// The single-window pipeline classifies each monitoring window in
// isolation; the temporal head classifies a fixed-length *sequence* of
// consecutive windows. WindowHistory is the ring buffer that turns the
// DefenseRuntime's live window stream into such sequences: push one
// FrameSample per window, read back a chronological SequenceView of the
// last `sequence_length` windows.
//
// Warmup semantics are deterministic by construction: until
// `sequence_length` windows have been pushed, the OLDEST live window is
// repeated at the front of the view. Repetition (rather than zero-frames)
// keeps every per-window feature plane a pure function of a real sampled
// window, and makes the cross-window delta channel exactly zero across the
// padded prefix — the sequence looks like "steady state at the first
// observation", which is the correct null hypothesis before history
// exists.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "monitor/dataset.hpp"

namespace dl2f::monitor {

/// Chronological view of a window sequence, oldest first. Pointers stay
/// valid until the owning container is mutated (WindowHistory::push /
/// clear, or vector reallocation for materialized sequences).
using SequenceView = std::span<const FrameSample* const>;

class WindowHistory {
 public:
  explicit WindowHistory(std::int32_t sequence_length)
      : cap_(sequence_length) {
    assert(sequence_length >= 1);
    ring_.reserve(static_cast<std::size_t>(cap_));
    view_.resize(static_cast<std::size_t>(cap_), nullptr);
  }

  [[nodiscard]] std::int32_t sequence_length() const noexcept { return cap_; }
  /// Total windows pushed since construction / the last clear().
  [[nodiscard]] std::int64_t pushed() const noexcept { return pushed_; }
  /// Live windows currently held (min(pushed, sequence_length)).
  [[nodiscard]] std::int32_t live() const noexcept {
    return static_cast<std::int32_t>(std::min<std::int64_t>(pushed_, cap_));
  }
  /// True once view() no longer needs warmup padding.
  [[nodiscard]] bool warmed_up() const noexcept { return pushed_ >= cap_; }

  /// Append the newest monitoring window, evicting the oldest once the
  /// ring is full. Invalidates previously returned views.
  void push(FrameSample sample) {
    const auto slot = static_cast<std::size_t>(pushed_ % cap_);
    if (ring_.size() <= slot) {
      ring_.push_back(std::move(sample));
    } else {
      ring_[slot] = std::move(sample);
    }
    ++pushed_;
  }

  /// Drop all history (quarantine-epoch boundaries, test reuse).
  void clear() {
    ring_.clear();
    pushed_ = 0;
  }

  /// The chronological sequence ending at the newest window — always
  /// exactly sequence_length entries, warmup-padded at the front by
  /// repeating the oldest live window. Requires at least one push.
  [[nodiscard]] SequenceView view() const {
    assert(pushed_ > 0);
    const std::int64_t oldest = pushed_ - live();
    for (std::int32_t j = 0; j < cap_; ++j) {
      std::int64_t p = pushed_ - cap_ + j;
      if (p < oldest) p = oldest;
      view_[static_cast<std::size_t>(j)] = &ring_[static_cast<std::size_t>(p % cap_)];
    }
    return {view_.data(), view_.size()};
  }

  /// The newest pushed window. Requires at least one push.
  [[nodiscard]] const FrameSample& latest() const {
    assert(pushed_ > 0);
    return ring_[static_cast<std::size_t>((pushed_ - 1) % cap_)];
  }

 private:
  std::int32_t cap_;
  std::int64_t pushed_ = 0;
  std::vector<FrameSample> ring_;
  /// Scratch for view(); sized once, so view() never allocates.
  mutable std::vector<const FrameSample*> view_;
};

}  // namespace dl2f::monitor
