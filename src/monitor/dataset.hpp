// Labeled feature-frame datasets: what the CNNs train and evaluate on.
//
// One FrameSample is one monitoring window: the four directional VCO
// frames (instantaneous, sampled at the window end), the four directional
// BOC frames (accumulated over the window), the attack label, and —
// for attack windows — the ground-truth segmentation masks derived from
// the scenario's XY flooding routes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "monitor/benchmark.hpp"
#include "monitor/sampler.hpp"
#include "traffic/fdos.hpp"

namespace dl2f::monitor {

struct FrameSample {
  DirectionalFrames vco;
  DirectionalFrames boc;
  /// Per-node NI injection demand over this window, in flits, indexed by
  /// NodeId (FeatureSampler::sample_ni_load). Empty when the producer does
  /// not sample it — temporal feature extraction treats missing as zero.
  std::vector<float> ni_load;
  /// Length of the monitoring window that produced this sample, in cycles
  /// (0 = unknown; temporal feature extraction falls back to its default).
  std::int64_t window_cycles = 0;
  bool under_attack = false;

  /// Per-direction binary masks of input ports on a flooding route
  /// (all-zero when benign). Segmentation ground truth.
  DirectionalFrames port_truth;
  /// Ground-truth victim node ids (routing-path victims + target victim).
  std::vector<NodeId> victim_truth;
  /// The scenario that produced this sample (attackers empty when benign).
  traffic::AttackScenario scenario;
};

/// Non-owning view of contiguous monitoring windows — the batch unit the
/// inference API (core::PipelineSession::process_batch) consumes. Any
/// contiguous FrameSample storage (a Dataset, a vector of live windows, a
/// single sample) converts to one for free.
using WindowBatch = std::span<const FrameSample>;

struct Dataset {
  MeshShape mesh = MeshShape::square(16);
  std::vector<FrameSample> samples;

  [[nodiscard]] std::size_t attack_count() const noexcept;
  [[nodiscard]] std::size_t benign_count() const noexcept;

  /// All samples as a batch view for bulk scoring.
  [[nodiscard]] WindowBatch windows() const noexcept { return {samples.data(), samples.size()}; }
};

struct DatasetConfig {
  MeshShape mesh = MeshShape::square(16);
  noc::RouterConfig router;
  /// Scenarios simulated per benchmark (paper: 18 per benchmark at FIR
  /// 0.8, split between 1- and 2-attacker cases).
  std::int32_t scenarios_per_benchmark = 18;
  double fir = 0.8;
  std::int64_t warmup_cycles = 1500;       ///< benign-only settling time
  std::int64_t attack_ramp_cycles = 1000;  ///< settle time after enabling FDoS
  std::int32_t benign_samples_per_run = 4;
  std::int32_t attack_samples_per_run = 4;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// Simulate every scenario of every requested benchmark and emit labeled
/// samples. Each run: warmup -> benign windows -> enable FDoS -> ramp ->
/// attack windows; BOC counters reset at each window boundary.
[[nodiscard]] Dataset generate_dataset(const DatasetConfig& cfg,
                                       const std::vector<Benchmark>& benchmarks);

/// Build the per-direction ground-truth port masks for a scenario.
[[nodiscard]] DirectionalFrames ground_truth_masks(const FrameGeometry& geom,
                                                   const traffic::AttackScenario& scenario);

/// Deterministically split a dataset into train/test parts (stratified by
/// label) with the given test fraction.
struct DatasetSplit {
  Dataset train;
  Dataset test;
};
[[nodiscard]] DatasetSplit split_dataset(const Dataset& data, double test_fraction,
                                         std::uint64_t seed);

}  // namespace dl2f::monitor
